//! Bottom-up evaluation: naive and semi-naive fixpoint over stratified
//! programs.
//!
//! Each stratum (an SCC of the predicate dependency graph, see
//! [`crate::program`]) is evaluated in order. Non-recursive strata get a
//! single pass; recursive strata run the semi-naive delta iteration (or the
//! naive full re-derivation when [`EvalOptions::semi_naive`] is off — kept
//! as an ablation baseline, see DESIGN.md).
//!
//! Three further performance layers sit on top, each with its own
//! [`EvalOptions`] knob so the ablation benches can decompose the speedup:
//!
//! * **join planning** ([`EvalOptions::join_reorder`]): before a stratum
//!   runs, each rule body is greedily reordered by bound-variable count and
//!   current relation cardinality ([`Rule::reorder`]); the chosen order is
//!   recorded in the model's [`EvalProfile`] for `explain`-style dumps;
//! * **indexing** ([`EvalOptions::use_index`]): joins with any bound
//!   argument probe a lazily-built hash index on exactly the bound column
//!   set ([`crate::fact::Relation::iter_bound`]); build/hit/miss counts
//!   land in [`EvalStats`];
//! * **cross-query caching** ([`EvalOptions::base_cache`], driven by
//!   [`crate::Engine::run_for_seeded`]): strata whose predicates are
//!   already at fixpoint in a seeded base model are skipped outright.
//!
//! Function terms (skolem placeholders from domain-map assertions, paper
//! §4) can generate unboundedly deep terms; derivations whose head exceeds
//! [`EvalOptions::max_term_depth`] are clipped and counted in
//! [`EvalStats::depth_clipped`].

use crate::atom::{AggFunc, Aggregate, Atom, BodyItem, CmpOp};
use crate::error::{DatalogError, Result};
use crate::fact::{FactStore, Relation, Tuple};
use crate::interner::Sym;
use crate::program::Stratification;
use crate::rule::Rule;
use crate::term::{Subst, Term};
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A shared, clonable cancellation flag for cooperative interruption of
/// long-running fixpoints (and, in `kind-core`, of in-flight fetch
/// plans). Every clone observes the same flag; setting it is sticky
/// until [`CancelToken::reset`].
///
/// The evaluators check the token **at round boundaries** (never inside
/// a join), so a cancelled evaluation stops after the current round and
/// returns [`DatalogError::Interrupted`] instead of a half-built model.
#[derive(Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation; every holder of a clone observes it at its
    /// next check point.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }

    /// Clears the flag so the token can be reused for the next
    /// operation.
    pub fn reset(&self) {
        self.0.store(false, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for CancelToken {
    /// Renders only the flag's value, never the allocation identity, so
    /// two structurally equal option sets format identically (the
    /// mediator's base-model fingerprint hashes a `Debug` rendering).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CancelToken({})",
            if self.is_cancelled() {
                "cancelled"
            } else {
                "live"
            }
        )
    }
}

/// Evaluation knobs.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Use semi-naive (delta) iteration for recursive strata. Turning this
    /// off re-derives everything each round (ablation baseline).
    pub semi_naive: bool,
    /// Maximum nesting depth of function terms in derived facts; deeper
    /// derivations are dropped (and counted). Bounds skolem chains.
    pub max_term_depth: usize,
    /// Hard cap on fixpoint rounds (per stratum, and on alternating
    /// fixpoint sweeps); exceeding it is an error.
    pub max_iterations: usize,
    /// Use hash indexes for joins with bound arguments (any column set,
    /// built on first probe). Turning this off forces full scans
    /// (ablation baseline).
    pub use_index: bool,
    /// Greedily reorder rule bodies per stratum by bound-variable count
    /// and relation cardinality before evaluating. Turning this off keeps
    /// the compiled source order (ablation baseline).
    pub join_reorder: bool,
    /// Allow evaluation on top of a cached base model
    /// ([`crate::Engine::run_for_seeded`]): strata untouched by the delta
    /// are seeded from the cache and skipped. Turning this off re-derives
    /// everything from the EDB (ablation baseline).
    pub base_cache: bool,
    /// Apply the magic-sets demand rewrite on the goal-directed query
    /// paths ([`crate::Engine::run_for_query`] and
    /// [`crate::Engine::run_for_query_seeded`]): adorn the relevant rules
    /// from the goal's bound/free pattern, guard them with magic (demand)
    /// predicates seeded from the query constants, and evaluate only what
    /// some demand reaches. Answers are identical with the rewrite on or
    /// off; only the amount of derived intermediate facts (and wall
    /// clock) changes. Full-program evaluation ([`crate::Engine::run`],
    /// `materialize_all`) never applies the rewrite regardless of this
    /// knob — there is no goal to demand from.
    pub magic_sets: bool,
    /// Worker-thread cap for the parallel fixpoint: within each stratum
    /// round, rule applications (and, for a round with a single fat rule,
    /// the range of its first join input) are partitioned across a scoped
    /// thread pool and merged in fixed (rule-index, partition-index)
    /// order. `0` (the default) means auto — capped by available
    /// parallelism; `1` forces the serial engine (determinism baseline);
    /// larger values cap the pool. The resulting [`Model`], [`EvalStats`],
    /// and [`RulePlan`]s are bit-identical for every setting — only
    /// wall-clock changes (the same contract as the fetch plane's
    /// `fetch_threads`).
    pub eval_threads: usize,
    /// Cooperative cancellation: when set, every fixpoint loop
    /// (stratified, semi-naive, and the alternating fixpoint) checks the
    /// token at round boundaries and returns
    /// [`DatalogError::Interrupted`] once it is cancelled. `None` (the
    /// default) evaluates to completion. The token does not participate
    /// in model identity: two runs differing only in `cancel` produce
    /// the same model (when neither is actually cancelled).
    pub cancel: Option<CancelToken>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            semi_naive: true,
            max_term_depth: 8,
            max_iterations: 100_000,
            use_index: true,
            join_reorder: true,
            base_cache: true,
            magic_sets: true,
            eval_threads: 0,
            cancel: None,
        }
    }
}

/// The round-boundary cancellation check shared by every fixpoint loop:
/// returns [`DatalogError::Interrupted`] iff the options carry a
/// cancelled token.
pub(crate) fn check_cancelled(opts: &EvalOptions, stats: &EvalStats) -> Result<()> {
    match &opts.cancel {
        Some(token) if token.is_cancelled() => Err(DatalogError::Interrupted {
            after_iterations: stats.iterations,
        }),
        _ => Ok(()),
    }
}

/// The worker count a partitioned plane actually uses: `knob` (`0` = auto,
/// i.e. all of `cores`) capped by the number of independent work units,
/// never less than one. Shared by the evaluate plane (`eval_threads` over
/// round partitions) and the fetch plane (`fetch_threads` over per-source
/// jobs).
pub fn pool_size(knob: usize, units: usize, cores: usize) -> usize {
    let cap = if knob == 0 { cores } else { knob };
    cap.min(units).max(1)
}

/// Resolves an `eval_threads`/`fetch_threads` knob to a concrete cap:
/// `0` becomes the host's available parallelism.
pub(crate) fn resolve_threads(knob: usize) -> usize {
    if knob == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        knob
    }
}

/// Counters reported by an evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Total fixpoint rounds executed.
    pub iterations: usize,
    /// Facts derived (beyond the EDB).
    pub derived: usize,
    /// Derivations dropped by the term-depth limit.
    pub depth_clipped: usize,
    /// Rule applications (body solutions found).
    pub applications: usize,
    /// Column-set indexes built on first probe.
    pub index_builds: usize,
    /// Join probes answered through an index (including fully-ground
    /// membership tests).
    pub index_hits: usize,
    /// Join probes that fell back to a full relation scan.
    pub index_misses: usize,
}

/// Index probe counters, threaded through matching by shared reference
/// (matching only ever holds `&self`).
#[derive(Debug, Default)]
pub(crate) struct IndexCounters {
    builds: Cell<usize>,
    hits: Cell<usize>,
    misses: Cell<usize>,
}

impl IndexCounters {
    fn build(&self) {
        self.builds.set(self.builds.get() + 1);
    }
    fn hit(&self) {
        self.hits.set(self.hits.get() + 1);
    }
    fn miss(&self) {
        self.misses.set(self.misses.get() + 1);
    }
    pub(crate) fn fold_into(&self, stats: &mut EvalStats) {
        stats.index_builds += self.builds.get();
        stats.index_hits += self.hits.get();
        stats.index_misses += self.misses.get();
    }
    /// Adds this worker-private counter set into `dst` (the stratum
    /// counters). Sums are partition-order-invariant, but the parallel
    /// merge still folds in fixed partition order for uniformity.
    fn add_to(&self, dst: &IndexCounters) {
        dst.builds.set(dst.builds.get() + self.builds.get());
        dst.hits.set(dst.hits.get() + self.hits.get());
        dst.misses.set(dst.misses.get() + self.misses.get());
    }
}

/// The join order chosen for one rule within one stratum evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RulePlan {
    /// Head predicate of the rule.
    pub head: Sym,
    /// For each executed body position, the index of that item in the
    /// rule's compiled body order.
    pub join_order: Vec<usize>,
    /// Whether the greedy reorder changed the compiled order.
    pub reordered: bool,
}

/// What happened while evaluating one stratum.
#[derive(Debug, Clone, Default)]
pub struct StratumProfile {
    /// Predicates defined in this stratum.
    pub preds: Vec<Sym>,
    /// Whether the stratum required fixpoint iteration.
    pub recursive: bool,
    /// Stratum skipped because every predicate was already at fixpoint in
    /// the seeded base model (cross-query cache).
    pub skipped: bool,
    /// Fixpoint rounds spent on this stratum.
    pub iterations: usize,
    /// Facts derived in this stratum.
    pub derived: usize,
    /// Indexes built while evaluating this stratum.
    pub index_builds: usize,
    /// Index-answered join probes in this stratum.
    pub index_hits: usize,
    /// Full-scan join probes in this stratum.
    pub index_misses: usize,
    /// Worker threads used by the widest parallel round of this stratum
    /// (`1` when every round ran on the coordinating thread).
    pub threads_used: usize,
    /// Work partitions in the widest parallel round (rule applications,
    /// delta variants, or fat-rule range splits); `0` when every round
    /// ran serially.
    pub partitions: usize,
    /// Adorned (binding-specialized) rules evaluated in this stratum;
    /// `0` unless the magic-sets rewrite fired.
    pub adorned_rules: usize,
    /// Magic (demand) predicates defined in this stratum; `0` unless the
    /// magic-sets rewrite fired.
    pub magic_preds: usize,
    /// The join order used for each rule of the stratum.
    pub plans: Vec<RulePlan>,
}

/// A record of how a model was computed: per-stratum join plans and
/// counters, inspectable via [`crate::Engine::render_profile`].
#[derive(Debug, Clone, Default)]
pub struct EvalProfile {
    /// Strata in evaluation order.
    pub strata: Vec<StratumProfile>,
    /// Evaluation went through the alternating fixpoint (well-founded
    /// semantics); strata then hold a single summary entry.
    pub well_founded: bool,
    /// Facts seeded from a cached base model before evaluation.
    pub seeded: usize,
    /// The resolved evaluate-plane worker cap ([`EvalOptions::eval_threads`]
    /// with `0` resolved to available parallelism). Purely informational:
    /// the model is bit-identical for every value.
    pub eval_threads: usize,
    /// Whether the magic-sets demand rewrite produced the evaluated
    /// program (goal-directed query paths only; see
    /// [`EvalOptions::magic_sets`]).
    pub magic_fired: bool,
    /// Total adorned (binding-specialized) rules in the rewritten
    /// program; `0` when the rewrite did not fire.
    pub adorned_rules: usize,
    /// Total magic (demand) predicates generated by the rewrite; `0`
    /// when the rewrite did not fire.
    pub magic_preds: usize,
    /// The magic rewrite applied but was *declined* by the cost model:
    /// the estimated demand cone was too large a fraction of the full
    /// closure for demand filtering to win (see
    /// `kind_datalog::magic`), so plain bottom-up ran instead.
    pub magic_declined: bool,
    /// The cost model's estimated demanded fraction of the reachable EDB
    /// (`None` when no estimate was made — rewrite off, declined for
    /// structural reasons, or below the size floor).
    pub magic_demand_ratio: Option<f64>,
    /// The model was produced by [`crate::Engine::apply_delta`]
    /// (incremental maintenance) rather than a cold evaluation.
    pub delta_applied: bool,
    /// Strata whose relations were reused wholesale from the previous
    /// model (untouched by the delta) during [`crate::Engine::apply_delta`].
    pub delta_reused_strata: usize,
    /// Strata re-evaluated incrementally (seeded semi-naive additions or
    /// DRed overdelete/rederive) during [`crate::Engine::apply_delta`].
    pub delta_incremental_strata: usize,
    /// Strata rebuilt cold (non-monotone residues: changed rules, mixed
    /// grow/shrink inputs) during [`crate::Engine::apply_delta`].
    pub delta_rebuilt_strata: usize,
    /// [`crate::Engine::apply_delta`] fell back to a full cold evaluation
    /// (well-founded program or three-valued base model).
    pub delta_fallback: bool,
}

/// The result of evaluating a program: a (possibly three-valued) model.
#[derive(Debug, Clone)]
pub struct Model {
    /// True facts: EDB plus everything derived.
    pub facts: FactStore,
    /// Atoms with undefined truth value under the well-founded semantics
    /// (always empty for stratified programs).
    pub undefined: FactStore,
    /// Evaluation counters.
    pub stats: EvalStats,
    /// How the model was computed (join plans, per-stratum counters).
    pub profile: EvalProfile,
}

impl Model {
    /// Whether `pred(args)` is true in the model.
    pub fn holds(&self, pred: crate::interner::Sym, args: &[Term]) -> bool {
        self.facts.contains(pred, args)
    }

    /// Whether `pred(args)` is undefined (neither true nor false).
    pub fn is_undefined(&self, pred: crate::interner::Sym, args: &[Term]) -> bool {
        self.undefined.contains(pred, args)
    }

    /// All tuples of `pred` that are true.
    pub fn tuples(&self, pred: crate::interner::Sym) -> Vec<Tuple> {
        self.facts
            .relation(pred)
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Matches a query atom (which may contain variables) against the true
    /// facts, returning one substituted argument vector per solution.
    /// Ground argument positions are answered through the relation index
    /// instead of a full scan.
    pub fn query(&self, pattern: &Atom) -> Vec<Vec<Term>> {
        let mut out = Vec::new();
        let Some(rel) = self.facts.relation(pattern.pred) else {
            return out;
        };
        let mut vars = Vec::new();
        pattern.collect_vars(&mut vars);
        let nvars = vars.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        let mut subst = Subst::with_capacity(nvars);
        let bound: Vec<(usize, &Term)> = pattern
            .args
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ground())
            .collect();
        let mut scan = |tuple: &Tuple, out: &mut Vec<Vec<Term>>| {
            if tuple.len() != pattern.args.len() {
                return;
            }
            let m = subst.mark();
            if pattern
                .args
                .iter()
                .zip(tuple.iter())
                .all(|(p, v)| subst.match_term(p, v))
            {
                out.push(pattern.args.iter().map(|t| t.apply(&subst)).collect());
            }
            subst.undo_to(m);
        };
        if bound.is_empty() {
            for tuple in rel.iter() {
                scan(tuple, &mut out);
            }
        } else {
            for tuple in rel.iter_bound(&bound) {
                scan(tuple, &mut out);
            }
        }
        out
    }
}

/// How negated atoms are decided during matching.
#[derive(Clone, Copy)]
pub(crate) enum NegView<'a> {
    /// Stratified: `not p(t)` holds iff `p(t)` is absent from the total
    /// store (lower strata are complete by construction).
    Closed,
    /// Reduct: `not p(t)` holds iff `p(t)` is absent from a frozen
    /// interpretation (the alternating-fixpoint argument).
    Frozen(&'a FactStore),
}

pub(crate) struct MatchCtx<'a> {
    /// The accumulated store (EDB + everything derived so far).
    pub total: &'a FactStore,
    /// When `Some((store, idx))`, the positive atom at plan position `idx`
    /// must match inside `store` (the delta) instead of `total`.
    pub delta: Option<(&'a FactStore, usize)>,
    /// Negation policy.
    pub neg: NegView<'a>,
    /// Whether index lookups are enabled.
    pub use_index: bool,
    /// Index build/hit/miss counters for this evaluation scope.
    pub counters: &'a IndexCounters,
}

impl MatchCtx<'_> {
    fn neg_holds(&self, pred: crate::interner::Sym, args: &[Term]) -> bool {
        match self.neg {
            NegView::Closed => !self.total.contains(pred, args),
            NegView::Frozen(j) => !j.contains(pred, args),
        }
    }
}

/// Enumerates all solutions of `items[idx..]` under `subst`, invoking `cb`
/// for each complete solution. Returns the number of solutions found.
pub(crate) fn solve(
    items: &[BodyItem],
    idx: usize,
    subst: &mut Subst,
    ctx: &MatchCtx<'_>,
    cb: &mut dyn FnMut(&Subst),
) -> usize {
    let Some(item) = items.get(idx) else {
        cb(subst);
        return 1;
    };
    let mut found = 0;
    match item {
        BodyItem::Pos(atom) => {
            let use_delta = matches!(ctx.delta, Some((_, di)) if di == idx);
            let store: &FactStore = if use_delta {
                ctx.delta.expect("delta set").0
            } else {
                ctx.total
            };
            let Some(rel) = store.relation(atom.pred) else {
                return 0;
            };
            if ctx.use_index {
                // Which argument positions are ground under the current
                // bindings?
                let applied: Vec<Term> = atom.args.iter().map(|t| t.apply(subst)).collect();
                if !applied.is_empty() && applied.iter().all(Term::is_ground) {
                    // Fully ground: a membership probe replaces the scan.
                    ctx.counters.hit();
                    if applied.len() == atom.args.len() && rel.contains(&applied) {
                        found += solve(items, idx + 1, subst, ctx, cb);
                    }
                    return found;
                }
                let bound: Vec<(usize, &Term)> = applied
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.is_ground())
                    .collect();
                if !bound.is_empty() {
                    let mut cols: Vec<usize> = bound.iter().map(|&(c, _)| c).collect();
                    cols.sort_unstable();
                    if rel.ensure_index(&cols) {
                        ctx.counters.build();
                    }
                    ctx.counters.hit();
                    for tuple in rel.iter_bound(&bound) {
                        if tuple.len() != atom.args.len() {
                            continue;
                        }
                        let m = subst.mark();
                        if atom
                            .args
                            .iter()
                            .zip(tuple.iter())
                            .all(|(p, v)| subst.match_term(p, v))
                        {
                            found += solve(items, idx + 1, subst, ctx, cb);
                        }
                        subst.undo_to(m);
                    }
                    return found;
                }
            }
            ctx.counters.miss();
            for tuple in rel.iter() {
                if tuple.len() != atom.args.len() {
                    continue;
                }
                let m = subst.mark();
                if atom
                    .args
                    .iter()
                    .zip(tuple.iter())
                    .all(|(p, v)| subst.match_term(p, v))
                {
                    found += solve(items, idx + 1, subst, ctx, cb);
                }
                subst.undo_to(m);
            }
        }
        BodyItem::Neg(atom) => {
            let ground = atom.apply(subst);
            debug_assert!(ground.is_ground(), "negation not ground at runtime");
            if ctx.neg_holds(ground.pred, &ground.args) {
                found += solve(items, idx + 1, subst, ctx, cb);
            }
        }
        BodyItem::Cmp(op, l, r) => {
            if let (Some(lv), Some(rv)) = (l.eval(subst), r.eval(subst)) {
                if cmp_holds(*op, &lv, &rv) {
                    found += solve(items, idx + 1, subst, ctx, cb);
                }
            }
        }
        BodyItem::Assign(lhs, expr) => {
            if let Some(val) = expr.eval(subst) {
                let m = subst.mark();
                if subst.match_term(lhs, &val) {
                    found += solve(items, idx + 1, subst, ctx, cb);
                }
                subst.undo_to(m);
            }
        }
        BodyItem::Agg(agg) => {
            found += solve_aggregate(items, idx, agg, subst, ctx, cb);
        }
    }
    found
}

fn cmp_holds(op: CmpOp, l: &Term, r: &Term) -> bool {
    // Integers compare numerically; other terms use the structural order.
    let ord = l.cmp(r);
    match op {
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Ne => ord.is_ne(),
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
    }
}

/// Evaluates an aggregate subgoal: runs the subquery (against the total
/// store — aggregates are stratified), groups solutions by the group-by
/// variables, folds the distinct collected values, and continues with each
/// group's bindings.
fn solve_aggregate(
    items: &[BodyItem],
    idx: usize,
    agg: &Aggregate,
    subst: &mut Subst,
    ctx: &MatchCtx<'_>,
    cb: &mut dyn FnMut(&Subst),
) -> usize {
    // Subquery sees the total store, never the delta, and inherits the
    // outer bindings (correlation).
    let sub_ctx = MatchCtx {
        total: ctx.total,
        delta: None,
        neg: ctx.neg,
        use_index: ctx.use_index,
        counters: ctx.counters,
    };
    let mut groups: HashMap<Vec<Term>, HashSet<Term>> = HashMap::new();
    {
        let groups = &mut groups;
        let value = &agg.value;
        let group_by = &agg.group_by;
        let m = subst.mark();
        solve(&agg.body, 0, subst, &sub_ctx, &mut |s: &Subst| {
            let key: Vec<Term> = group_by.iter().map(|v| Term::Var(*v).apply(s)).collect();
            let val = value.apply(s);
            if key.iter().all(Term::is_ground) && val.is_ground() {
                groups.entry(key).or_default().insert(val);
            }
        });
        subst.undo_to(m);
    }
    // `count`/`sum` of an empty solution set (no grouping) is 0 — needed to
    // detect cardinality violations of the form "exactly one" (Example 3).
    if groups.is_empty() && agg.group_by.is_empty() {
        if let Some(zero) = fold_empty(agg.func) {
            groups.insert(Vec::new(), HashSet::new());
            let _ = zero; // marker: empty group handled by fold()
        }
    }
    let mut found = 0;
    for (key, values) in groups {
        let Some(result) = fold(agg.func, &values) else {
            continue;
        };
        let m = subst.mark();
        let mut ok = true;
        for (v, k) in agg.group_by.iter().zip(key.iter()) {
            if !subst.match_term(&Term::Var(*v), k) {
                ok = false;
                break;
            }
        }
        if ok && subst.match_term(&Term::Var(agg.result), &result) {
            found += solve(items, idx + 1, subst, ctx, cb);
        }
        subst.undo_to(m);
    }
    found
}

fn fold_empty(func: AggFunc) -> Option<Term> {
    match func {
        AggFunc::Count | AggFunc::Sum => Some(Term::Int(0)),
        AggFunc::Min | AggFunc::Max => None,
    }
}

fn fold(func: AggFunc, values: &HashSet<Term>) -> Option<Term> {
    match func {
        AggFunc::Count => Some(Term::Int(values.len() as i64)),
        AggFunc::Sum => {
            let mut acc: i64 = 0;
            for v in values {
                match v {
                    Term::Int(i) => acc = acc.checked_add(*i)?,
                    _ => return None,
                }
            }
            Some(Term::Int(acc))
        }
        AggFunc::Min => values.iter().min().cloned(),
        AggFunc::Max => values.iter().max().cloned(),
    }
}

/// Applies `rule` under `ctx`, inserting new head facts into `out`.
/// Returns the number of new facts.
pub(crate) fn apply_rule(
    rule: &Rule,
    ctx: &MatchCtx<'_>,
    out: &mut FactStore,
    stats: &mut EvalStats,
    opts: &EvalOptions,
) -> usize {
    let mut subst = Subst::with_capacity(rule.nvars as usize);
    let mut new = 0;
    let head = &rule.head;
    let total = ctx.total;
    let max_depth = opts.max_term_depth;
    let mut clipped = 0usize;
    let mut apps = 0usize;
    solve(&rule.body, 0, &mut subst, ctx, &mut |s: &Subst| {
        apps += 1;
        let args: Vec<Term> = head.args.iter().map(|t| t.apply(s)).collect();
        debug_assert!(args.iter().all(Term::is_ground), "non-ground head");
        if args.iter().any(|t| t.depth() > max_depth) {
            clipped += 1;
            return;
        }
        if !total.contains(head.pred, &args) && out.insert(head.pred, args.into()) {
            new += 1;
        }
    });
    stats.applications += apps;
    stats.depth_clipped += clipped;
    new
}

/// Join planning: reorders `rule` for evaluation (when enabled), recording
/// the chosen plan. Same-stratum predicates are costed as unbounded since
/// their relations grow during iteration.
pub(crate) fn plan_rule(
    rule: &Rule,
    total: &FactStore,
    stratum_preds: &HashSet<Sym>,
    opts: &EvalOptions,
) -> (Rule, RulePlan) {
    if !opts.join_reorder {
        return (
            rule.clone(),
            RulePlan {
                head: rule.head.pred,
                join_order: (0..rule.body.len()).collect(),
                reordered: false,
            },
        );
    }
    let (planned, join_order) = rule.reorder(|p| {
        if stratum_preds.contains(&p) {
            usize::MAX
        } else {
            total.relation(p).map_or(0, |r| r.len())
        }
    });
    let reordered = join_order.iter().enumerate().any(|(i, &o)| i != o);
    (
        planned,
        RulePlan {
            head: rule.head.pred,
            join_order,
            reordered,
        },
    )
}

// ---------------------------------------------------------------------
// Parallel round execution.
//
// One fixpoint round = a fixed list of *work units* in (rule-index,
// delta-variant-index) order; each unit is one rule application
// (optionally against one delta variant). Units derive into private
// `FactStore`s with private counters and are merged in unit order, which
// reproduces the serial shared-out pass bit for bit:
//
// * the merged new-fact set equals the serial `out` (every unit dedups
//   against the same frozen pre-round `total`; cross-unit duplicates
//   collapse at merge in first-derivation order, exactly as the serial
//   shared `out.insert` would have);
// * `applications`/`depth_clipped` count body solutions, which partition
//   exactly across units (each solution involves one rule and, in the
//   delta case, one variant);
// * index probe counters are per-probe-event and probe events do not
//   move across units; shared-relation index builds are exactly-once
//   (`Relation::ensure_index` is build-once under its `RwLock`), so the
//   summed build count matches serial.
//
// A round with a *single* unit (one fat recursive rule) is instead split
// by range: the coordinator enumerates the candidates of the first
// executed body position once — bumping the position's probe counters
// exactly as the serial `solve` would — and workers each solve the rest
// of the body for a contiguous candidate range. When the delta variant
// sits at position 0 this is literally a partition of the delta-fact
// range; concatenating range results in order reproduces the serial
// solution order because position 0 is the outermost join loop.

/// Minimum estimated input tuples before a round is worth spawning
/// threads for (purely a wall-clock heuristic: results are identical
/// either way).
const PAR_MIN_WORK: usize = 64;

/// Per-stratum parallel-execution telemetry (maxima over rounds).
pub(crate) struct ParMeta {
    pub threads_used: usize,
    pub partitions: usize,
}

impl ParMeta {
    pub(crate) fn new() -> Self {
        ParMeta {
            threads_used: 1,
            partitions: 0,
        }
    }
}

/// What one worker produced for one unit (or one range partition).
struct UnitResult {
    out: FactStore,
    stats: EvalStats,
    counters: IndexCounters,
}

/// Enumerates the candidate tuples of `atom` at executed position 0 under
/// the empty substitution, replicating `solve`'s Pos branch — including
/// its counter bumps, which therefore happen exactly once per round no
/// matter how many ranges the candidates are split into. Returns `None`
/// when the relation does not exist (`solve` bails out before touching
/// any counter in that case).
fn first_pos_candidates(
    atom: &crate::atom::Atom,
    store: &FactStore,
    opts: &EvalOptions,
    counters: &IndexCounters,
) -> Option<Vec<Tuple>> {
    let rel = store.relation(atom.pred)?;
    if opts.use_index {
        let applied: Vec<Term> = atom.args.clone();
        if !applied.is_empty() && applied.iter().all(Term::is_ground) {
            counters.hit();
            if rel.contains(&applied) {
                return Some(vec![applied.into()]);
            }
            return Some(Vec::new());
        }
        let bound: Vec<(usize, &Term)> = applied
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ground())
            .collect();
        if !bound.is_empty() {
            let mut cols: Vec<usize> = bound.iter().map(|&(c, _)| c).collect();
            cols.sort_unstable();
            if rel.ensure_index(&cols) {
                counters.build();
            }
            counters.hit();
            return Some(rel.iter_bound(&bound).cloned().collect());
        }
    }
    counters.miss();
    Some(rel.iter().cloned().collect())
}

/// Applies `rule` seeded with `tuples` as the candidates of its first body
/// atom: for each candidate the first atom is matched, then the remaining
/// body is solved under `ctx` (whose delta, if any, must point past
/// position 0). Derivations land in `out`; `applications`/`depth_clipped`
/// in `stats`.
fn apply_rule_range(
    rule: &Rule,
    first: &crate::atom::Atom,
    tuples: &[Tuple],
    ctx: &MatchCtx<'_>,
    out: &mut FactStore,
    stats: &mut EvalStats,
    opts: &EvalOptions,
) {
    let mut subst = Subst::with_capacity(rule.nvars as usize);
    let head = &rule.head;
    let total = ctx.total;
    let max_depth = opts.max_term_depth;
    let mut clipped = 0usize;
    let mut apps = 0usize;
    for tuple in tuples {
        if tuple.len() != first.args.len() {
            continue;
        }
        let m = subst.mark();
        if first
            .args
            .iter()
            .zip(tuple.iter())
            .all(|(p, v)| subst.match_term(p, v))
        {
            solve(&rule.body, 1, &mut subst, ctx, &mut |s: &Subst| {
                apps += 1;
                let args: Vec<Term> = head.args.iter().map(|t| t.apply(s)).collect();
                debug_assert!(args.iter().all(Term::is_ground), "non-ground head");
                if args.iter().any(|t| t.depth() > max_depth) {
                    clipped += 1;
                    return;
                }
                if !total.contains(head.pred, &args) {
                    out.insert(head.pred, args.into());
                }
            });
        }
        subst.undo_to(m);
    }
    stats.applications += apps;
    stats.depth_clipped += clipped;
}

/// Splits `0..len` into `parts` contiguous ranges whose sizes differ by
/// at most one, in order.
fn split_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.min(len).max(1);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Runs `thunks` on up to `workers` scoped threads (the fetch plane's
/// slot/queue idiom) and returns the results in thunk order. The
/// coordinator thread drains the queue alongside `workers - 1` spawned
/// threads, so a round costs one spawn fewer than its worker budget.
fn run_pool<T: Send>(workers: usize, count: usize, run: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let drain = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= count {
            break;
        }
        let done = run(i);
        *slots[i].lock().expect("result slot poisoned") = Some(done);
    };
    std::thread::scope(|scope| {
        for _ in 1..workers {
            scope.spawn(drain);
        }
        drain();
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every unit produced a result")
        })
        .collect()
}

/// Executes one full application pass (one fixpoint round): every
/// `(rule, delta-variant)` unit once, returning the merged store of new
/// facts. With `cap <= 1` — or too little estimated work — this is the
/// serial shared-out loop; otherwise units (or, for a single-unit round,
/// ranges of the first join input) run on a scoped thread pool and merge
/// in fixed (rule-index, partition-index) order. Results are
/// bit-identical either way.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_round(
    units: &[(&Rule, Option<usize>)],
    total: &FactStore,
    delta: Option<&FactStore>,
    neg: NegView<'_>,
    opts: &EvalOptions,
    cap: usize,
    counters: &IndexCounters,
    stats: &mut EvalStats,
    par: &mut ParMeta,
) -> FactStore {
    let ctx_delta = |di: Option<usize>| di.map(|d| (delta.expect("delta store"), d));
    let serial = |stats: &mut EvalStats| {
        let mut out = FactStore::new();
        for &(rule, di) in units {
            let ctx = MatchCtx {
                total,
                delta: ctx_delta(di),
                neg,
                use_index: opts.use_index,
                counters,
            };
            apply_rule(rule, &ctx, &mut out, stats, opts);
        }
        out
    };
    if cap <= 1 || units.is_empty() {
        return serial(stats);
    }
    // Estimated input size per unit: the relation its delta variant (or
    // first positive atom) scans. A deterministic wall-clock heuristic —
    // the result does not depend on which path runs.
    let unit_input = |&(rule, di): &(&Rule, Option<usize>)| -> usize {
        let (store, pos) = match di {
            Some(d) => (delta.expect("delta store"), Some(d)),
            None => (total, rule.positive_atom_indices().first().copied()),
        };
        let Some(pos) = pos else { return 0 };
        let BodyItem::Pos(atom) = &rule.body[pos] else {
            return 0;
        };
        store.relation(atom.pred).map_or(0, Relation::len)
    };
    if units.len() == 1 {
        // Single fat rule: split the first join input's candidate range.
        let (rule, di) = units[0];
        // A delta variant past position 0 keeps its meaning for the
        // workers; at position 0 it is consumed by the enumeration — so
        // any variant position is splittable as long as the first
        // executed body item is a positive atom.
        let splittable = matches!(rule.body.first(), Some(BodyItem::Pos(_)))
            && unit_input(&units[0]) >= PAR_MIN_WORK;
        if !splittable {
            return serial(stats);
        }
        let BodyItem::Pos(first) = &rule.body[0] else {
            unreachable!("checked above")
        };
        let use_delta = di == Some(0);
        let store = if use_delta {
            delta.expect("delta store")
        } else {
            total
        };
        let Some(cands) = first_pos_candidates(first, store, opts, counters) else {
            // Relation absent: the serial pass would find no solutions
            // and touch no counters.
            return FactStore::new();
        };
        let rest_delta = if use_delta { None } else { ctx_delta(di) };
        if cands.len() < PAR_MIN_WORK {
            // Not worth spawning; finish on this thread (the position-0
            // counters are already bumped, so go through the range path).
            let mut out = FactStore::new();
            let ctx = MatchCtx {
                total,
                delta: rest_delta,
                neg,
                use_index: opts.use_index,
                counters,
            };
            apply_rule_range(rule, first, &cands, &ctx, &mut out, stats, opts);
            return out;
        }
        let ranges = split_ranges(cands.len(), cap);
        let workers = ranges.len();
        par.threads_used = par.threads_used.max(workers);
        par.partitions = par.partitions.max(ranges.len());
        let results = run_pool(workers, ranges.len(), |i| {
            let counters = IndexCounters::default();
            let mut out = FactStore::new();
            let mut local = EvalStats::default();
            let ctx = MatchCtx {
                total,
                delta: rest_delta,
                neg,
                use_index: opts.use_index,
                counters: &counters,
            };
            apply_rule_range(
                rule,
                first,
                &cands[ranges[i].clone()],
                &ctx,
                &mut out,
                &mut local,
                opts,
            );
            UnitResult {
                out,
                stats: local,
                counters,
            }
        });
        return merge_results(results, counters, stats);
    }
    // Multi-unit round: one partition per (rule, delta-variant) unit.
    if units.iter().map(unit_input).sum::<usize>() < PAR_MIN_WORK {
        return serial(stats);
    }
    let workers = cap.min(units.len());
    par.threads_used = par.threads_used.max(workers);
    par.partitions = par.partitions.max(units.len());
    let results = run_pool(workers, units.len(), |i| {
        let (rule, di) = units[i];
        let counters = IndexCounters::default();
        let mut out = FactStore::new();
        let mut local = EvalStats::default();
        let ctx = MatchCtx {
            total,
            delta: ctx_delta(di),
            neg,
            use_index: opts.use_index,
            counters: &counters,
        };
        apply_rule(rule, &ctx, &mut out, &mut local, opts);
        UnitResult {
            out,
            stats: local,
            counters,
        }
    });
    merge_results(results, counters, stats)
}

/// Folds worker results in fixed partition order: private stores merge
/// into one round store (first-derivation order, cross-partition dups
/// collapsing exactly as a serial shared out would) and private counters
/// sum into the stratum counters.
fn merge_results(
    results: Vec<UnitResult>,
    counters: &IndexCounters,
    stats: &mut EvalStats,
) -> FactStore {
    let mut merged = FactStore::new();
    for r in results {
        stats.applications += r.stats.applications;
        stats.depth_clipped += r.stats.depth_clipped;
        r.counters.add_to(counters);
        merged.absorb(&r.out);
    }
    merged
}

/// Evaluates a stratified program over `edb`, producing a two-valued model.
///
/// `rules` is the full rule list; `strat` the stratification computed by
/// [`crate::program::stratify`]. The caller guarantees `!strat.needs_wfs`.
pub(crate) fn eval_stratified(
    rules: &[Rule],
    strat: &Stratification,
    edb: &FactStore,
    opts: &EvalOptions,
) -> Result<Model> {
    eval_stratified_skipping(rules, strat, edb, opts, None)
}

/// Like [`eval_stratified`], but skips any stratum whose predicates are
/// all in `stable` (they are already at fixpoint in `edb`, having been
/// seeded from a cached base model — see
/// [`crate::Engine::run_for_seeded`]).
pub(crate) fn eval_stratified_skipping(
    rules: &[Rule],
    strat: &Stratification,
    edb: &FactStore,
    opts: &EvalOptions,
    stable: Option<&HashSet<Sym>>,
) -> Result<Model> {
    // Detached: evaluation must not observe (or warm) index state shared
    // with a previous model's relations, or the index counters — part of
    // the bit-identical stats contract — would depend on run history.
    let mut total = edb.detached_clone();
    let mut stats = EvalStats::default();
    let mut profile = EvalProfile::default();
    let cap = resolve_threads(opts.eval_threads);
    profile.eval_threads = cap;
    for stratum in &strat.strata {
        let mut sp = StratumProfile {
            preds: stratum.preds.clone(),
            recursive: stratum.recursive,
            ..Default::default()
        };
        if let Some(stable) = stable {
            if !stratum.preds.is_empty() && stratum.preds.iter().all(|p| stable.contains(p)) {
                sp.skipped = true;
                profile.strata.push(sp);
                continue;
            }
        }
        let stratum_preds: HashSet<Sym> = stratum.preds.iter().copied().collect();
        let prepared: Vec<(Rule, RulePlan)> = stratum
            .rules
            .iter()
            .map(|&ri| plan_rule(&rules[ri], &total, &stratum_preds, opts))
            .collect();
        let stratum_rules: Vec<&Rule> = prepared.iter().map(|(r, _)| r).collect();
        sp.plans = prepared.iter().map(|(_, p)| p.clone()).collect();
        let counters = IndexCounters::default();
        let mut par = ParMeta::new();
        let before = stats;
        if !stratum.recursive {
            // Single pass suffices.
            let units: Vec<(&Rule, Option<usize>)> =
                stratum_rules.iter().map(|&r| (r, None)).collect();
            let out = execute_round(
                &units,
                &total,
                None,
                NegView::Closed,
                opts,
                cap,
                &counters,
                &mut stats,
                &mut par,
            );
            stats.derived += total.absorb(&out);
            stats.iterations += 1;
        } else if opts.semi_naive {
            seminaive_stratum(
                &stratum_rules,
                &stratum_preds,
                &mut total,
                &mut stats,
                &counters,
                opts,
                cap,
                &mut par,
            )?;
        } else {
            naive_stratum(
                &stratum_rules,
                &mut total,
                &mut stats,
                &counters,
                opts,
                cap,
                &mut par,
            )?;
        }
        sp.iterations = stats.iterations - before.iterations;
        sp.derived = stats.derived - before.derived;
        sp.index_builds = counters.builds.get();
        sp.index_hits = counters.hits.get();
        sp.index_misses = counters.misses.get();
        sp.threads_used = par.threads_used;
        sp.partitions = par.partitions;
        counters.fold_into(&mut stats);
        profile.strata.push(sp);
    }
    Ok(Model {
        facts: total,
        undefined: FactStore::new(),
        stats,
        profile,
    })
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn naive_stratum(
    rules: &[&Rule],
    total: &mut FactStore,
    stats: &mut EvalStats,
    counters: &IndexCounters,
    opts: &EvalOptions,
    cap: usize,
    par: &mut ParMeta,
) -> Result<()> {
    let units: Vec<(&Rule, Option<usize>)> = rules.iter().map(|&r| (r, None)).collect();
    loop {
        check_cancelled(opts, stats)?;
        stats.iterations += 1;
        if stats.iterations > opts.max_iterations {
            return Err(DatalogError::IterationLimit {
                limit: opts.max_iterations,
            });
        }
        let out = execute_round(
            &units,
            total,
            None,
            NegView::Closed,
            opts,
            cap,
            counters,
            stats,
            par,
        );
        let added = total.absorb(&out);
        stats.derived += added;
        if added == 0 {
            return Ok(());
        }
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn seminaive_stratum(
    rules: &[&Rule],
    stratum_preds: &HashSet<crate::interner::Sym>,
    total: &mut FactStore,
    stats: &mut EvalStats,
    counters: &IndexCounters,
    opts: &EvalOptions,
    cap: usize,
    par: &mut ParMeta,
) -> Result<()> {
    // Round 0: naive pass to seed the delta.
    check_cancelled(opts, stats)?;
    let seed_units: Vec<(&Rule, Option<usize>)> = rules.iter().map(|&r| (r, None)).collect();
    stats.iterations += 1;
    let mut delta = execute_round(
        &seed_units,
        total,
        None,
        NegView::Closed,
        opts,
        cap,
        counters,
        stats,
        par,
    );
    stats.derived += total.absorb(&delta);
    // One delta-variant unit per positive body atom over a stratum
    // predicate, in fixed (rule-index, variant-index) order; the delta
    // store itself changes per round but the unit list does not.
    let mut delta_units: Vec<(&Rule, Option<usize>)> = Vec::new();
    for &rule in rules {
        for di in rule.positive_atom_indices() {
            let BodyItem::Pos(atom) = &rule.body[di] else {
                unreachable!()
            };
            if stratum_preds.contains(&atom.pred) {
                delta_units.push((rule, Some(di)));
            }
        }
    }
    while !delta.is_empty() {
        check_cancelled(opts, stats)?;
        stats.iterations += 1;
        if stats.iterations > opts.max_iterations {
            return Err(DatalogError::IterationLimit {
                limit: opts.max_iterations,
            });
        }
        let next = execute_round(
            &delta_units,
            total,
            Some(&delta),
            NegView::Closed,
            opts,
            cap,
            counters,
            stats,
            par,
        );
        stats.derived += total.absorb(&next);
        delta = next;
    }
    Ok(())
}

/// Computes the least model of the *positive reduct* of `rules` wrt the
/// frozen interpretation `j`: `not p(t)` holds iff `p(t) ∉ j`. Used by the
/// alternating fixpoint (well-founded semantics).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gamma(
    rules: &[Rule],
    edb: &FactStore,
    j: &FactStore,
    stats: &mut EvalStats,
    counters: &IndexCounters,
    opts: &EvalOptions,
    cap: usize,
    par: &mut ParMeta,
) -> Result<FactStore> {
    // Detached for the same reason as `eval_stratified_skipping`: index
    // counters must not depend on shared-relation index state.
    let mut total = edb.detached_clone();
    // With negation frozen the program is positive: a single global
    // fixpoint loop is sound. Semi-naive deltas would need per-predicate
    // bookkeeping across the whole program; for clarity we run rounds of
    // full rule application here (the reduct is evaluated only a handful of
    // times). Each round goes through the same partitioned executor as
    // the stratified engine, so the alternating fixpoint parallelizes
    // identically.
    let units: Vec<(&Rule, Option<usize>)> = rules.iter().map(|r| (r, None)).collect();
    loop {
        check_cancelled(opts, stats)?;
        stats.iterations += 1;
        if stats.iterations > opts.max_iterations {
            return Err(DatalogError::IterationLimit {
                limit: opts.max_iterations,
            });
        }
        let out = execute_round(
            &units,
            &total,
            None,
            NegView::Frozen(j),
            opts,
            cap,
            counters,
            stats,
            par,
        );
        let added = total.absorb(&out);
        stats.derived += added;
        if added == 0 {
            return Ok(total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;
    use crate::program::stratify;
    use crate::term::Var;

    struct Fixture {
        syms: Interner,
        edb: FactStore,
        rules: Vec<Rule>,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                syms: Interner::new(),
                edb: FactStore::new(),
                rules: Vec::new(),
            }
        }
        fn c(&mut self, name: &str) -> Term {
            Term::Const(self.syms.intern(name))
        }
        fn fact(&mut self, pred: &str, args: &[Term]) {
            let p = self.syms.intern(pred);
            self.edb.insert(p, args.to_vec().into());
        }
        fn run(&self) -> Model {
            let strat = stratify(&self.rules, |s| format!("{s}")).unwrap();
            assert!(!strat.needs_wfs);
            eval_stratified(&self.rules, &strat, &self.edb, &EvalOptions::default()).unwrap()
        }
    }

    fn v(i: u32) -> Term {
        Term::Var(Var(i))
    }

    #[test]
    fn transitive_closure() {
        let mut f = Fixture::new();
        let a = f.c("a");
        let b = f.c("b");
        let c = f.c("c");
        let d = f.c("d");
        f.fact("e", &[a.clone(), b.clone()]);
        f.fact("e", &[b.clone(), c.clone()]);
        f.fact("e", &[c.clone(), d.clone()]);
        let e = f.syms.intern("e");
        let tc = f.syms.intern("tc");
        f.rules.push(
            Rule::compile(
                Atom::new(tc, vec![v(0), v(1)]),
                vec![BodyItem::Pos(Atom::new(e, vec![v(0), v(1)]))],
                2,
                vec!["X".into(), "Y".into()],
            )
            .unwrap(),
        );
        f.rules.push(
            Rule::compile(
                Atom::new(tc, vec![v(0), v(1)]),
                vec![
                    BodyItem::Pos(Atom::new(tc, vec![v(0), v(2)])),
                    BodyItem::Pos(Atom::new(e, vec![v(2), v(1)])),
                ],
                3,
                vec!["X".into(), "Y".into(), "Z".into()],
            )
            .unwrap(),
        );
        let m = f.run();
        assert!(m.holds(tc, &[a.clone(), d.clone()]));
        assert!(m.holds(tc, &[b.clone(), d.clone()]));
        assert!(!m.holds(tc, &[d.clone(), a.clone()]));
        assert_eq!(m.tuples(tc).len(), 6);
    }

    #[test]
    fn seminaive_and_naive_agree() {
        let mut f = Fixture::new();
        // Chain of 30 nodes.
        let nodes: Vec<Term> = (0..30).map(|i| f.c(&format!("n{i}"))).collect();
        for w in nodes.windows(2) {
            f.fact("e", &[w[0].clone(), w[1].clone()]);
        }
        let e = f.syms.intern("e");
        let tc = f.syms.intern("tc");
        f.rules.push(
            Rule::compile(
                Atom::new(tc, vec![v(0), v(1)]),
                vec![BodyItem::Pos(Atom::new(e, vec![v(0), v(1)]))],
                2,
                vec!["X".into(), "Y".into()],
            )
            .unwrap(),
        );
        f.rules.push(
            Rule::compile(
                Atom::new(tc, vec![v(0), v(1)]),
                vec![
                    BodyItem::Pos(Atom::new(tc, vec![v(0), v(2)])),
                    BodyItem::Pos(Atom::new(tc, vec![v(2), v(1)])),
                ],
                3,
                vec!["X".into(), "Y".into(), "Z".into()],
            )
            .unwrap(),
        );
        let strat = stratify(&f.rules, |s| format!("{s}")).unwrap();
        let semi = eval_stratified(&f.rules, &strat, &f.edb, &EvalOptions::default()).unwrap();
        let naive = eval_stratified(
            &f.rules,
            &strat,
            &f.edb,
            &EvalOptions {
                semi_naive: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(semi.tuples(tc).len(), naive.tuples(tc).len());
        assert_eq!(semi.tuples(tc).len(), 29 * 30 / 2);
    }

    #[test]
    fn stratified_negation_complement() {
        let mut f = Fixture::new();
        let a = f.c("a");
        let b = f.c("b");
        f.fact("node", std::slice::from_ref(&a));
        f.fact("node", std::slice::from_ref(&b));
        f.fact("marked", std::slice::from_ref(&a));
        let node = f.syms.intern("node");
        let marked = f.syms.intern("marked");
        let un = f.syms.intern("unmarked");
        f.rules.push(
            Rule::compile(
                Atom::new(un, vec![v(0)]),
                vec![
                    BodyItem::Pos(Atom::new(node, vec![v(0)])),
                    BodyItem::Neg(Atom::new(marked, vec![v(0)])),
                ],
                1,
                vec!["X".into()],
            )
            .unwrap(),
        );
        let m = f.run();
        assert!(!m.holds(un, &[a]));
        assert!(m.holds(un, &[b]));
    }

    #[test]
    fn aggregate_count_groups() {
        let mut f = Fixture::new();
        let n1 = f.c("n1");
        let n2 = f.c("n2");
        let a1 = f.c("a1");
        let a2 = f.c("a2");
        let a3 = f.c("a3");
        f.fact("has", &[n1.clone(), a1]);
        f.fact("has", &[n1.clone(), a2]);
        f.fact("has", &[n2.clone(), a3]);
        let has = f.syms.intern("has");
        let cnt = f.syms.intern("cnt");
        // cnt(N, C) :- C = count{ A [N] : has(N, A) }.
        f.rules.push(
            Rule::compile(
                Atom::new(cnt, vec![v(0), v(1)]),
                vec![BodyItem::Agg(Aggregate {
                    func: AggFunc::Count,
                    value: v(2),
                    group_by: vec![Var(0)],
                    body: vec![BodyItem::Pos(Atom::new(has, vec![v(0), v(2)]))],
                    result: Var(1),
                })],
                3,
                vec!["N".into(), "C".into(), "A".into()],
            )
            .unwrap(),
        );
        let m = f.run();
        assert!(m.holds(cnt, &[n1, Term::Int(2)]));
        assert!(m.holds(cnt, &[n2, Term::Int(1)]));
    }

    #[test]
    fn aggregate_count_empty_is_zero() {
        let mut f = Fixture::new();
        let x = f.c("x");
        f.fact("probe", std::slice::from_ref(&x));
        let probe = f.syms.intern("probe");
        let none = f.syms.intern("nothing");
        let res = f.syms.intern("res");
        // res(P, C) :- probe(P), C = count{ Y : nothing(Y) }.
        f.rules.push(
            Rule::compile(
                Atom::new(res, vec![v(0), v(1)]),
                vec![
                    BodyItem::Pos(Atom::new(probe, vec![v(0)])),
                    BodyItem::Agg(Aggregate {
                        func: AggFunc::Count,
                        value: v(2),
                        group_by: vec![],
                        body: vec![BodyItem::Pos(Atom::new(none, vec![v(2)]))],
                        result: Var(1),
                    }),
                ],
                3,
                vec!["P".into(), "C".into(), "Y".into()],
            )
            .unwrap(),
        );
        let m = f.run();
        assert!(m.holds(res, &[x, Term::Int(0)]));
    }

    #[test]
    fn aggregate_sum_min_max() {
        let mut f = Fixture::new();
        let g = f.c("g");
        f.fact("m", &[g.clone(), Term::Int(3)]);
        f.fact("m", &[g.clone(), Term::Int(5)]);
        f.fact("m", &[g.clone(), Term::Int(5)]); // duplicate value: set semantics
        let mp = f.syms.intern("m");
        for (name, func, expect) in [
            ("s", AggFunc::Sum, 8),
            ("mn", AggFunc::Min, 3),
            ("mx", AggFunc::Max, 5),
        ] {
            let p = f.syms.intern(name);
            f.rules.push(
                Rule::compile(
                    Atom::new(p, vec![v(0), v(1)]),
                    vec![BodyItem::Agg(Aggregate {
                        func,
                        value: v(2),
                        group_by: vec![Var(0)],
                        body: vec![BodyItem::Pos(Atom::new(mp, vec![v(0), v(2)]))],
                        result: Var(1),
                    })],
                    3,
                    vec!["G".into(), "R".into(), "V".into()],
                )
                .unwrap(),
            );
            let m = f.run();
            assert!(
                m.holds(p, &[g.clone(), Term::Int(expect)]),
                "{name} expected {expect}"
            );
            f.rules.clear();
        }
    }

    #[test]
    fn depth_limit_clips_skolem_chains() {
        let mut f = Fixture::new();
        let a = f.c("a");
        f.fact("p", &[a]);
        let p = f.syms.intern("p");
        let fsym = f.syms.intern("f");
        // p(f(X)) :- p(X).  — infinite without the depth limit.
        f.rules.push(
            Rule::compile(
                Atom::new(p, vec![Term::func(fsym, vec![v(0)])]),
                vec![BodyItem::Pos(Atom::new(p, vec![v(0)]))],
                1,
                vec!["X".into()],
            )
            .unwrap(),
        );
        let strat = stratify(&f.rules, |s| format!("{s}")).unwrap();
        let opts = EvalOptions {
            max_term_depth: 4,
            ..Default::default()
        };
        let m = eval_stratified(&f.rules, &strat, &f.edb, &opts).unwrap();
        // a, f(a), f(f(a)), f3(a), f4(a): 5 facts.
        assert_eq!(m.tuples(p).len(), 5);
        assert!(m.stats.depth_clipped > 0);
    }

    #[test]
    fn arithmetic_assignment() {
        let mut f = Fixture::new();
        f.fact("n", &[Term::Int(4)]);
        let n = f.syms.intern("n");
        let d = f.syms.intern("double");
        f.rules.push(
            Rule::compile(
                Atom::new(d, vec![v(0), v(1)]),
                vec![
                    BodyItem::Pos(Atom::new(n, vec![v(0)])),
                    BodyItem::Assign(
                        v(1),
                        crate::atom::Expr::Mul(
                            Box::new(crate::atom::Expr::Term(v(0))),
                            Box::new(crate::atom::Expr::Term(Term::Int(2))),
                        ),
                    ),
                ],
                2,
                vec!["X".into(), "Y".into()],
            )
            .unwrap(),
        );
        let m = f.run();
        assert!(m.holds(d, &[Term::Int(4), Term::Int(8)]));
    }

    #[test]
    fn profile_records_plans_and_index_counters() {
        let mut f = Fixture::new();
        let a = f.c("a");
        let b = f.c("b");
        f.fact("e", &[a.clone(), b.clone()]);
        f.fact("e", &[b.clone(), a.clone()]);
        let e = f.syms.intern("e");
        let tc = f.syms.intern("tc");
        f.rules.push(
            Rule::compile(
                Atom::new(tc, vec![v(0), v(1)]),
                vec![BodyItem::Pos(Atom::new(e, vec![v(0), v(1)]))],
                2,
                vec!["X".into(), "Y".into()],
            )
            .unwrap(),
        );
        f.rules.push(
            Rule::compile(
                Atom::new(tc, vec![v(0), v(1)]),
                vec![
                    BodyItem::Pos(Atom::new(tc, vec![v(0), v(2)])),
                    BodyItem::Pos(Atom::new(e, vec![v(2), v(1)])),
                ],
                3,
                vec!["X".into(), "Y".into(), "Z".into()],
            )
            .unwrap(),
        );
        let m = f.run();
        assert_eq!(m.profile.strata.len(), 1);
        let sp = &m.profile.strata[0];
        assert!(sp.recursive);
        assert!(!sp.skipped);
        assert_eq!(sp.plans.len(), 2);
        assert!(sp.plans.iter().all(|p| p.head == tc));
        assert!(sp.iterations >= 2);
        // The recursive rule joins with a bound variable, so some probes
        // must have gone through the index.
        assert!(sp.index_hits > 0);
        assert_eq!(m.stats.index_hits, sp.index_hits);
        // With indexing off the same program reports only misses.
        let strat = stratify(&f.rules, |s| format!("{s}")).unwrap();
        let noidx = eval_stratified(
            &f.rules,
            &strat,
            &f.edb,
            &EvalOptions {
                use_index: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(noidx.stats.index_hits, 0);
        assert_eq!(noidx.stats.index_builds, 0);
        assert!(noidx.stats.index_misses > 0);
        assert_eq!(noidx.tuples(tc).len(), m.tuples(tc).len());
    }

    #[test]
    fn model_query_uses_index_for_ground_positions() {
        let mut f = Fixture::new();
        let a = f.c("a");
        let b = f.c("b");
        let c = f.c("c");
        f.fact("e", &[a.clone(), b.clone()]);
        f.fact("e", &[a.clone(), c.clone()]);
        f.fact("e", &[b.clone(), c.clone()]);
        let e = f.syms.intern("e");
        let m = f.run();
        // Ground first argument: index probe.
        let sols = m.query(&Atom::new(e, vec![a.clone(), v(0)]));
        assert_eq!(sols.len(), 2);
        // Ground second argument only.
        let sols = m.query(&Atom::new(e, vec![v(0), c.clone()]));
        assert_eq!(sols.len(), 2);
        // Fully ground.
        let sols = m.query(&Atom::new(e, vec![a.clone(), b.clone()]));
        assert_eq!(sols.len(), 1);
        // All variables: full scan.
        let sols = m.query(&Atom::new(e, vec![v(0), v(1)]));
        assert_eq!(sols.len(), 3);
        let rel = m.facts.relation(e).unwrap();
        assert!(rel.index_count() >= 2);
    }

    #[test]
    fn pool_size_clamps_and_defaults() {
        // Explicit knob wins, capped by the unit count.
        assert_eq!(pool_size(4, 100, 1), 4);
        assert_eq!(pool_size(4, 2, 16), 2);
        // knob = 0 defers to the core count, again capped by units.
        assert_eq!(pool_size(0, 100, 8), 8);
        assert_eq!(pool_size(0, 3, 8), 3);
        // Never below one worker, even with no work.
        assert_eq!(pool_size(0, 0, 8), 1);
        assert_eq!(pool_size(7, 0, 1), 1);
    }

    #[test]
    fn split_ranges_are_contiguous_and_balanced() {
        for (len, parts) in [(10usize, 3usize), (7, 7), (5, 8), (64, 4), (1, 1)] {
            let ranges = split_ranges(len, parts);
            assert!(!ranges.is_empty());
            // Contiguous cover of 0..len in order.
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, len);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            // Balanced: sizes differ by at most one.
            let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1);
        }
    }

    /// A seeded random-graph TC fixture fat enough to cross the
    /// `PAR_MIN_WORK` gate, so the partitioned round path really runs.
    fn parallel_fixture() -> (Fixture, crate::interner::Sym) {
        let mut f = Fixture::new();
        let nodes: Vec<Term> = (0..40).map(|i| f.c(&format!("n{i}"))).collect();
        // Deterministic LCG so the edge set is reproducible.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..160 {
            let a = rng() % nodes.len();
            let b = rng() % nodes.len();
            let (ta, tb) = (nodes[a].clone(), nodes[b].clone());
            f.fact("e", &[ta, tb]);
        }
        let e = f.syms.intern("e");
        let tc = f.syms.intern("tc");
        f.rules.push(
            Rule::compile(
                Atom::new(tc, vec![v(0), v(1)]),
                vec![BodyItem::Pos(Atom::new(e, vec![v(0), v(1)]))],
                2,
                vec!["X".into(), "Y".into()],
            )
            .unwrap(),
        );
        f.rules.push(
            Rule::compile(
                Atom::new(tc, vec![v(0), v(1)]),
                vec![
                    BodyItem::Pos(Atom::new(tc, vec![v(0), v(2)])),
                    BodyItem::Pos(Atom::new(e, vec![v(2), v(1)])),
                ],
                3,
                vec!["X".into(), "Y".into(), "Z".into()],
            )
            .unwrap(),
        );
        (f, tc)
    }

    fn canonical_facts(m: &Model) -> Vec<String> {
        let mut out: Vec<String> = m
            .facts
            .iter()
            .map(|(p, t)| format!("{p:?}|{t:?}"))
            .collect();
        out.extend(m.undefined.iter().map(|(p, t)| format!("u{p:?}|{t:?}")));
        out.sort();
        out
    }

    #[test]
    fn parallel_eval_is_bit_identical_to_serial() {
        let (f, tc) = parallel_fixture();
        let strat = stratify(&f.rules, |s| format!("{s}")).unwrap();
        let serial = eval_stratified(&f.rules, &strat, &f.edb, &EvalOptions::default()).unwrap();
        assert!(!serial.tuples(tc).is_empty());
        for threads in [2usize, 4, 8] {
            let par = eval_stratified(
                &f.rules,
                &strat,
                &f.edb,
                &EvalOptions {
                    eval_threads: threads,
                    ..Default::default()
                },
            )
            .unwrap();
            // Facts, stats, and compiled join plans are all bit-identical:
            // the parallel engine is an implementation detail, not a model.
            assert_eq!(canonical_facts(&par), canonical_facts(&serial));
            assert_eq!(par.stats, serial.stats, "threads={threads}");
            assert_eq!(par.profile.strata.len(), serial.profile.strata.len());
            for (ps, ss) in par.profile.strata.iter().zip(&serial.profile.strata) {
                assert_eq!(ps.plans, ss.plans);
            }
            // The parallel plan was actually exercised and recorded.
            assert_eq!(par.profile.eval_threads, threads);
            assert!(
                par.profile.strata.iter().any(|s| s.threads_used > 1),
                "threads={threads}: expected a partitioned round"
            );
        }
    }

    #[test]
    fn parallel_naive_eval_matches_serial_naive() {
        let (f, _) = parallel_fixture();
        let strat = stratify(&f.rules, |s| format!("{s}")).unwrap();
        let opts = EvalOptions {
            semi_naive: false,
            ..Default::default()
        };
        let serial = eval_stratified(&f.rules, &strat, &f.edb, &opts).unwrap();
        let par = eval_stratified(
            &f.rules,
            &strat,
            &f.edb,
            &EvalOptions {
                semi_naive: false,
                eval_threads: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(canonical_facts(&par), canonical_facts(&serial));
        assert_eq!(par.stats, serial.stats);
    }

    #[test]
    fn eval_threads_one_keeps_serial_profile_shape() {
        let (f, _) = parallel_fixture();
        let strat = stratify(&f.rules, |s| format!("{s}")).unwrap();
        let m = eval_stratified(
            &f.rules,
            &strat,
            &f.edb,
            &EvalOptions {
                eval_threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(m.profile.eval_threads, 1);
        assert!(m.profile.strata.iter().all(|s| s.threads_used == 1));
        assert!(m.profile.strata.iter().all(|s| s.partitions == 0));
    }
}
