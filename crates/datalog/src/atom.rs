//! Atoms, comparisons, arithmetic expressions, and aggregate subgoals —
//! the building blocks of rule bodies.
//!
//! The paper's GCM extension mechanism (§3) requires a rule language in the
//! style "head *if* body" with well-founded semantics, plus grouping
//! aggregation for cardinality constraints (Example 3: `N = count{VA[VB];
//! R(VA,VB)}`) and for the recursive `aggregate` view operation (Example 4).

use crate::interner::{Interner, Sym};
use crate::term::{Subst, Term, Var};
use std::fmt;

/// A predicate applied to terms, e.g. `instance(X, neuron)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The predicate symbol.
    pub pred: Sym,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Builds an atom.
    pub fn new(pred: Sym, args: Vec<Term>) -> Self {
        Atom { pred, args }
    }

    /// The predicate arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Collects the variables of all argument terms into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        for a in &self.args {
            a.collect_vars(out);
        }
    }

    /// Applies a substitution to every argument.
    pub fn apply(&self, subst: &Subst) -> Atom {
        Atom {
            pred: self.pred,
            args: self.args.iter().map(|t| t.apply(subst)).collect(),
        }
    }

    /// Whether all arguments are ground.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground)
    }

    /// Rendering adapter.
    pub fn display<'a>(&'a self, syms: &'a Interner) -> AtomDisplay<'a> {
        AtomDisplay { atom: self, syms }
    }
}

/// Pretty-printing adapter for [`Atom`].
pub struct AtomDisplay<'a> {
    atom: &'a Atom,
    syms: &'a Interner,
}

impl fmt::Display for AtomDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.syms.resolve(self.atom.pred))?;
        for (i, a) in self.atom.args.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", a.display(self.syms))?;
        }
        write!(f, ")")
    }
}

/// Comparison operators usable in rule bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=` on evaluated expressions (both sides bound).
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// An arithmetic expression over terms. Non-integer operands are only
/// allowed at the leaves of pure term expressions; arithmetic operators
/// require integer operands at evaluation time.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A plain term.
    Term(Term),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Integer division (errors on division by zero at eval time).
    Div(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Collects variables into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Expr::Term(t) => t.collect_vars(out),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Evaluates the expression under `subst`. Returns `None` when a
    /// variable is unbound, an operand is non-integer, or on division by
    /// zero / overflow.
    pub fn eval(&self, subst: &Subst) -> Option<Term> {
        match self {
            Expr::Term(t) => {
                let v = t.apply(subst);
                v.is_ground().then_some(v)
            }
            Expr::Add(a, b) => arith(a, b, subst, i64::checked_add),
            Expr::Sub(a, b) => arith(a, b, subst, i64::checked_sub),
            Expr::Mul(a, b) => arith(a, b, subst, i64::checked_mul),
            Expr::Div(a, b) => arith(
                a,
                b,
                subst,
                |x, y| {
                    if y == 0 {
                        None
                    } else {
                        x.checked_div(y)
                    }
                },
            ),
        }
    }
}

fn arith(a: &Expr, b: &Expr, subst: &Subst, op: impl Fn(i64, i64) -> Option<i64>) -> Option<Term> {
    match (a.eval(subst)?, b.eval(subst)?) {
        (Term::Int(x), Term::Int(y)) => op(x, y).map(Term::Int),
        _ => None,
    }
}

/// Aggregate functions supported in aggregate subgoals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Number of *distinct* collected values (set semantics, as in the
    /// paper's `count{VA[VB]; R(VA,VB)}`).
    Count,
    /// Sum of integer values.
    Sum,
    /// Minimum (integers ordered numerically, otherwise term order).
    Min,
    /// Maximum.
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        };
        f.write_str(s)
    }
}

/// An aggregate subgoal `R = func{ value [G1,...,Gk] : body }`.
///
/// The subquery `body` is evaluated; its solutions are grouped by the
/// values of `group_by`; within each group the distinct instantiations of
/// `value` are folded with `func`; the subgoal then yields one solution per
/// group, binding `group_by` (if unbound) and `result`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Aggregate {
    /// The fold function.
    pub func: AggFunc,
    /// The collected term (usually a variable).
    pub value: Term,
    /// Grouping variables.
    pub group_by: Vec<Var>,
    /// Subquery body (positive atoms, comparisons, assignments; no nested
    /// aggregates, no negation).
    pub body: Vec<BodyItem>,
    /// The variable receiving the aggregate result.
    pub result: Var,
}

/// One conjunct of a rule body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BodyItem {
    /// A positive atom.
    Pos(Atom),
    /// A negated atom (`not p(..)`), evaluated with well-founded or
    /// stratified semantics.
    Neg(Atom),
    /// A comparison between two evaluated expressions.
    Cmp(CmpOp, Expr, Expr),
    /// `lhs = expr`: evaluates `expr`; if `lhs` is an unbound variable it
    /// is bound to the value, otherwise the values must be equal.
    Assign(Term, Expr),
    /// An aggregate subgoal.
    Agg(Aggregate),
}

impl BodyItem {
    /// Variables that this item *requires* to be bound before it can run.
    /// Positive atoms require nothing; they bind their own variables.
    pub fn required_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        match self {
            BodyItem::Pos(_) => {}
            BodyItem::Neg(a) => a.collect_vars(&mut out),
            BodyItem::Cmp(_, l, r) => {
                l.collect_vars(&mut out);
                r.collect_vars(&mut out);
            }
            BodyItem::Assign(_, e) => e.collect_vars(&mut out),
            BodyItem::Agg(agg) => {
                // Correlated variables: everything in the aggregate body
                // that is neither grouped, the collected value, nor the
                // result must come bound from the outer scope only if it
                // also appears outside. We conservatively require nothing
                // here; correlation is handled by sharing the substitution.
                let _ = agg;
            }
        }
        out
    }

    /// Variables this item can *provide* (bind) when it succeeds.
    pub fn provided_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        match self {
            BodyItem::Pos(a) => a.collect_vars(&mut out),
            BodyItem::Neg(_) | BodyItem::Cmp(..) => {}
            BodyItem::Assign(t, _) => t.collect_vars(&mut out),
            BodyItem::Agg(agg) => {
                out.extend(agg.group_by.iter().copied());
                out.push(agg.result);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    #[test]
    fn expr_eval_arithmetic() {
        let mut sub = Subst::with_capacity(1);
        sub.bind(Var(0), Term::Int(7));
        let e = Expr::Add(
            Box::new(Expr::Term(Term::Var(Var(0)))),
            Box::new(Expr::Term(Term::Int(5))),
        );
        assert_eq!(e.eval(&sub), Some(Term::Int(12)));
    }

    #[test]
    fn expr_eval_div_by_zero_is_none() {
        let sub = Subst::with_capacity(0);
        let e = Expr::Div(
            Box::new(Expr::Term(Term::Int(1))),
            Box::new(Expr::Term(Term::Int(0))),
        );
        assert_eq!(e.eval(&sub), None);
    }

    #[test]
    fn expr_eval_unbound_is_none() {
        let sub = Subst::with_capacity(1);
        let e = Expr::Term(Term::Var(Var(0)));
        assert_eq!(e.eval(&sub), None);
    }

    #[test]
    fn expr_overflow_is_none() {
        let sub = Subst::with_capacity(0);
        let e = Expr::Mul(
            Box::new(Expr::Term(Term::Int(i64::MAX))),
            Box::new(Expr::Term(Term::Int(2))),
        );
        assert_eq!(e.eval(&sub), None);
    }

    #[test]
    fn atom_display() {
        let mut syms = Interner::new();
        let p = syms.intern("edge");
        let a = syms.intern("a");
        let atom = Atom::new(p, vec![Term::Const(a), Term::Var(Var(0))]);
        assert_eq!(atom.display(&syms).to_string(), "edge(a,?0)");
    }

    #[test]
    fn provided_and_required_vars() {
        let mut syms = Interner::new();
        let p = syms.intern("p");
        let pos = BodyItem::Pos(Atom::new(p, vec![Term::Var(Var(0))]));
        assert_eq!(pos.provided_vars(), vec![Var(0)]);
        assert!(pos.required_vars().is_empty());
        let neg = BodyItem::Neg(Atom::new(p, vec![Term::Var(Var(1))]));
        assert_eq!(neg.required_vars(), vec![Var(1)]);
        assert!(neg.provided_vars().is_empty());
    }
}
