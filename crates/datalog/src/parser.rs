//! Text syntax for programs, in the style the paper writes its rules
//! (§3–4):
//!
//! ```text
//! % facts
//! edge(a, b).  edge(b, c).
//! % rules
//! tc(X, Y) :- edge(X, Y).
//! tc(X, Y) :- tc(X, Z), edge(Z, Y).
//! % negation, comparison, arithmetic
//! root(X) :- node(X), not haspred(X), X != sentinel.
//! succ(X, Y) :- node(X), Y = X + 1.
//! % grouping aggregation (Example 3 syntax: count{VA[VB] : R(VA,VB)})
//! card(B, N) :- N = count{ A [B] : r(A, B) }.
//! ```
//!
//! Identifiers starting with a lowercase letter are constants/predicates;
//! identifiers starting with an uppercase letter or `_` are variables
//! (`_` alone is a fresh anonymous variable each time). Strings in double
//! quotes are constants. `%` and `//` start line comments.

use crate::atom::{AggFunc, Aggregate, Atom, BodyItem, CmpOp, Expr};
use crate::error::{DatalogError, Result};
use crate::interner::Interner;
use crate::rule::Rule;
use crate::term::{Term, Var};
use std::collections::HashMap;

/// A parsed clause: either a ground fact or a rule.
#[derive(Debug, Clone)]
pub enum Clause {
    /// A ground fact.
    Fact(Atom),
    /// A compiled rule.
    Rule(Rule),
}

/// Parses a whole program into clauses, interning symbols into `syms`.
pub fn parse_program(src: &str, syms: &mut Interner) -> Result<Vec<Clause>> {
    let mut p = Parser::new(src, syms);
    let mut out = Vec::new();
    loop {
        p.skip_ws();
        if p.at_end() {
            return Ok(out);
        }
        out.push(p.clause()?);
    }
}

/// Parses a single atom (e.g. a query pattern `tc(a, X)`), interning
/// symbols into `syms`. Returns the atom and the number of distinct
/// variables.
pub fn parse_atom(src: &str, syms: &mut Interner) -> Result<(Atom, u32)> {
    let mut p = Parser::new(src, syms);
    p.skip_ws();
    let atom = p.atom()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after atom"));
    }
    Ok((atom, p.nvars()))
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    syms: &'a mut Interner,
    vars: HashMap<String, Var>,
    var_names: Vec<String>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str, syms: &'a mut Interner) -> Self {
        Parser {
            src: src.as_bytes(),
            pos: 0,
            syms,
            vars: HashMap::new(),
            var_names: Vec::new(),
        }
    }

    fn nvars(&self) -> u32 {
        self.var_names.len() as u32
    }

    fn err(&self, msg: &str) -> DatalogError {
        let line = 1 + self.src[..self.pos.min(self.src.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        DatalogError::Parse {
            offset: self.pos,
            line,
            message: msg.to_string(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> u8 {
        self.src.get(self.pos).copied().unwrap_or(0)
    }

    fn peek2(&self) -> u8 {
        self.src.get(self.pos + 1).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        b
    }

    fn skip_ws(&mut self) {
        loop {
            while !self.at_end() && self.peek().is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.peek() == b'%' || (self.peek() == b'/' && self.peek2() == b'/') {
                while !self.at_end() && self.peek() != b'\n' {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{s}`")))
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        if !(self.peek().is_ascii_alphabetic() || self.peek() == b'_') {
            return None;
        }
        while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
            self.pos += 1;
        }
        Some(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn var(&mut self, name: String) -> Var {
        if name == "_" {
            let v = Var(self.nvars());
            self.var_names.push(format!("_{}", v.0));
            return v;
        }
        if let Some(&v) = self.vars.get(&name) {
            return v;
        }
        let v = Var(self.nvars());
        self.vars.insert(name.clone(), v);
        self.var_names.push(name);
        v
    }

    fn string_lit(&mut self) -> Result<String> {
        // Caller consumed the opening quote.
        let mut s = String::new();
        loop {
            if self.at_end() {
                return Err(self.err("unterminated string literal"));
            }
            match self.bump() {
                b'"' => return Ok(s),
                b'\\' => match self.bump() {
                    b'"' => s.push('"'),
                    b'\\' => s.push('\\'),
                    b'n' => s.push('\n'),
                    b't' => s.push('\t'),
                    c => return Err(self.err(&format!("bad escape \\{}", c as char))),
                },
                c => s.push(c as char),
            }
        }
    }

    fn integer(&mut self) -> Result<i64> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == b'-' {
            self.pos += 1;
        }
        if !self.peek().is_ascii_digit() {
            self.pos = start;
            return Err(self.err("expected integer"));
        }
        while self.peek().is_ascii_digit() {
            self.pos += 1;
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("integer out of range"))
    }

    /// term := VAR | INT | STRING | ident [ '(' term, .. ')' ]
    fn term(&mut self) -> Result<Term> {
        self.skip_ws();
        if self.peek() == b'"' {
            self.pos += 1;
            let s = self.string_lit()?;
            return Ok(Term::Const(self.syms.intern(&s)));
        }
        if self.peek().is_ascii_digit() || (self.peek() == b'-' && self.peek2().is_ascii_digit()) {
            return self.integer().map(Term::Int);
        }
        let Some(name) = self.ident() else {
            return Err(self.err("expected term"));
        };
        if name.starts_with(|c: char| c.is_ascii_uppercase()) || name.starts_with('_') {
            return Ok(Term::Var(self.var(name)));
        }
        if self.eat("(") {
            let mut args = vec![self.term()?];
            while self.eat(",") {
                args.push(self.term()?);
            }
            self.expect(")")?;
            Ok(Term::func(self.syms.intern(&name), args))
        } else {
            Ok(Term::Const(self.syms.intern(&name)))
        }
    }

    /// atom := ident [ '(' term, .. ')' ]
    fn atom(&mut self) -> Result<Atom> {
        self.skip_ws();
        let Some(name) = self.ident() else {
            return Err(self.err("expected predicate name"));
        };
        if name.starts_with(|c: char| c.is_ascii_uppercase()) || name.starts_with('_') {
            return Err(self.err("predicate names must start lowercase"));
        }
        let pred = self.syms.intern(&name);
        let mut args = Vec::new();
        if self.eat("(") {
            args.push(self.term()?);
            while self.eat(",") {
                args.push(self.term()?);
            }
            self.expect(")")?;
        }
        Ok(Atom::new(pred, args))
    }

    /// expr := mul (('+'|'-') mul)*
    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.expr_mul()?;
        loop {
            self.skip_ws();
            if self.eat("+") {
                lhs = Expr::Add(Box::new(lhs), Box::new(self.expr_mul()?));
            } else if self.peek() == b'-' && !self.peek2().is_ascii_digit() {
                self.pos += 1;
                lhs = Expr::Sub(Box::new(lhs), Box::new(self.expr_mul()?));
            } else if self.peek() == b'-' && self.peek2().is_ascii_digit() {
                // `X - 3`: subtraction, not a negative literal argument.
                self.pos += 1;
                lhs = Expr::Sub(Box::new(lhs), Box::new(self.expr_mul()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    /// mul := prim (('*'|'/') prim)*
    fn expr_mul(&mut self) -> Result<Expr> {
        let mut lhs = self.expr_prim()?;
        loop {
            self.skip_ws();
            if self.eat("*") {
                lhs = Expr::Mul(Box::new(lhs), Box::new(self.expr_prim()?));
            } else if self.peek() == b'/' && self.peek2() != b'/' {
                self.pos += 1;
                lhs = Expr::Div(Box::new(lhs), Box::new(self.expr_prim()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn expr_prim(&mut self) -> Result<Expr> {
        self.skip_ws();
        if self.eat("(") {
            let e = self.expr()?;
            self.expect(")")?;
            return Ok(e);
        }
        self.term().map(Expr::Term)
    }

    fn cmp_op(&mut self) -> Option<CmpOp> {
        self.skip_ws();
        for (tok, op) in [
            ("!=", CmpOp::Ne),
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
            ("=", CmpOp::Eq),
        ] {
            let bytes = tok.as_bytes();
            if self.src[self.pos..].starts_with(bytes) {
                // Don't confuse `=` with `:-`-like constructs; `=` alone
                // is fine here because `:-` is consumed before bodies.
                self.pos += bytes.len();
                return Some(op);
            }
        }
        None
    }

    fn agg_func(name: &str) -> Option<AggFunc> {
        match name {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// aggregate := func '{' term [ '[' var,.. ']' ] (':'|';') body '}'
    fn aggregate(&mut self, func: AggFunc, result: Var) -> Result<BodyItem> {
        self.expect("{")?;
        let value = self.term()?;
        let mut group_by = Vec::new();
        if self.eat("[") {
            loop {
                let Some(name) = self.ident() else {
                    return Err(self.err("expected grouping variable"));
                };
                if !(name.starts_with(|c: char| c.is_ascii_uppercase()) || name.starts_with('_')) {
                    return Err(self.err("grouping names must be variables"));
                }
                group_by.push(self.var(name));
                if !self.eat(",") {
                    break;
                }
            }
            self.expect("]")?;
        }
        self.skip_ws();
        if !self.eat(":") && !self.eat(";") {
            return Err(self.err("expected `:` or `;` in aggregate"));
        }
        let mut body = vec![self.body_item()?];
        while self.eat(",") {
            body.push(self.body_item()?);
        }
        self.expect("}")?;
        Ok(BodyItem::Agg(Aggregate {
            func,
            value,
            group_by,
            body,
            result,
        }))
    }

    fn body_item(&mut self) -> Result<BodyItem> {
        self.skip_ws();
        // `not atom`
        let save = self.pos;
        if let Some(word) = self.ident() {
            if word == "not" {
                return Ok(BodyItem::Neg(self.atom()?));
            }
            self.pos = save;
        }
        let lhs = self.expr()?;
        if let Some(op) = self.cmp_op() {
            // `V = agg{...}`?
            if op == CmpOp::Eq {
                let save2 = self.pos;
                if let Some(word) = self.ident() {
                    if let Some(func) = Self::agg_func(&word) {
                        self.skip_ws();
                        if self.peek() == b'{' {
                            let Expr::Term(Term::Var(result)) = lhs else {
                                return Err(self.err("aggregate result must be a single variable"));
                            };
                            return self.aggregate(func, result);
                        }
                    }
                    self.pos = save2;
                }
                // `term = expr` is an assignment when lhs is a plain term.
                if let Expr::Term(t) = lhs {
                    let rhs = self.expr()?;
                    return Ok(BodyItem::Assign(t, rhs));
                }
            }
            let rhs = self.expr()?;
            return Ok(BodyItem::Cmp(op, lhs, rhs));
        }
        // Otherwise it must be a positive atom: a constant (0-ary) or a
        // function-shaped call reinterpreted as a predicate.
        match lhs {
            Expr::Term(Term::Const(pred)) => Ok(BodyItem::Pos(Atom::new(pred, Vec::new()))),
            Expr::Term(Term::Func(pred, args)) => Ok(BodyItem::Pos(Atom::new(pred, args.to_vec()))),
            _ => Err(self.err("expected atom, comparison, or assignment")),
        }
    }

    fn clause(&mut self) -> Result<Clause> {
        self.vars.clear();
        self.var_names.clear();
        let head = self.atom()?;
        self.skip_ws();
        if self.eat(".") {
            if !head.is_ground() {
                return Err(self.err("facts must be ground"));
            }
            return Ok(Clause::Fact(head));
        }
        self.expect(":-")?;
        let mut body = vec![self.body_item()?];
        while self.eat(",") {
            body.push(self.body_item()?);
        }
        self.expect(".")?;
        let rule = Rule::compile_named(
            head,
            body,
            self.nvars(),
            std::mem::take(&mut self.var_names),
            self.syms,
        )?;
        Ok(Clause::Rule(rule))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> (Vec<Clause>, Interner) {
        let mut syms = Interner::new();
        let clauses = parse_program(src, &mut syms).unwrap();
        (clauses, syms)
    }

    #[test]
    fn parses_facts_and_rules() {
        let (cs, _) = parse_ok(
            "edge(a,b). edge(b,c).\n\
             tc(X,Y) :- edge(X,Y).\n\
             tc(X,Y) :- tc(X,Z), edge(Z,Y).",
        );
        assert_eq!(cs.len(), 4);
        assert!(matches!(cs[0], Clause::Fact(_)));
        assert!(matches!(cs[2], Clause::Rule(_)));
    }

    #[test]
    fn parses_negation_and_comparison() {
        let (cs, _) = parse_ok("p(X) :- q(X), not r(X), X != a.");
        let Clause::Rule(r) = &cs[0] else { panic!() };
        assert_eq!(r.body.len(), 3);
    }

    #[test]
    fn parses_strings_and_integers() {
        let (cs, syms) = parse_ok(r#"loc("Purkinje Cell", -3)."#);
        let Clause::Fact(f) = &cs[0] else { panic!() };
        assert_eq!(f.args[0], Term::Const(syms.get("Purkinje Cell").unwrap()));
        assert_eq!(f.args[1], Term::Int(-3));
    }

    #[test]
    fn parses_aggregate_with_grouping() {
        let (cs, _) = parse_ok("card(B,N) :- N = count{ A [B] : r(A,B) }, N != 1.");
        let Clause::Rule(r) = &cs[0] else { panic!() };
        assert!(r
            .body
            .iter()
            .any(|b| matches!(b, BodyItem::Agg(a) if a.group_by.len() == 1)));
        assert!(r.body.iter().any(|b| matches!(b, BodyItem::Cmp(..))));
    }

    #[test]
    fn parses_paper_semicolon_aggregate() {
        let (cs, _) = parse_ok("w(VB,N) :- N = count{ VA [VB] ; r(VA,VB) }.");
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn parses_arithmetic_assignment() {
        let (cs, _) = parse_ok("p(X,Y) :- n(X), Y = X * 2 + 1.");
        let Clause::Rule(r) = &cs[0] else { panic!() };
        assert!(r.body.iter().any(|b| matches!(b, BodyItem::Assign(..))));
    }

    #[test]
    fn parses_function_terms() {
        let (cs, syms) = parse_ok("p(f(a, g(b))) :- q(a).");
        let Clause::Rule(r) = &cs[0] else { panic!() };
        let Term::Func(f, args) = &r.head.args[0] else {
            panic!()
        };
        assert_eq!(syms.resolve(*f), "f");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn anonymous_vars_are_fresh() {
        let (cs, _) = parse_ok("p(X) :- q(X, _), r(X, _).");
        let Clause::Rule(r) = &cs[0] else { panic!() };
        assert_eq!(r.nvars, 3); // X plus two distinct anonymous vars
    }

    #[test]
    fn rejects_nonground_fact() {
        let mut syms = Interner::new();
        assert!(parse_program("p(X).", &mut syms).is_err());
    }

    #[test]
    fn rejects_unsafe_rule() {
        let mut syms = Interner::new();
        let err = parse_program("p(Y) :- q(X).", &mut syms).unwrap_err();
        assert!(matches!(err, DatalogError::UnsafeRule { .. }));
    }

    #[test]
    fn comments_are_skipped() {
        let (cs, _) = parse_ok("% header\np(a). // trailing\n% footer");
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn zero_ary_atoms() {
        let (cs, _) = parse_ok("flag. p(X) :- q(X), flag.");
        assert_eq!(cs.len(), 2);
        let Clause::Rule(r) = &cs[1] else { panic!() };
        assert!(r
            .body
            .iter()
            .any(|b| matches!(b, BodyItem::Pos(a) if a.args.is_empty())));
    }

    #[test]
    fn parse_atom_pattern() {
        let mut syms = Interner::new();
        let (a, nv) = parse_atom("tc(a, X)", &mut syms).unwrap();
        assert_eq!(a.args.len(), 2);
        assert_eq!(nv, 1);
    }

    #[test]
    fn error_has_line_numbers() {
        let mut syms = Interner::new();
        let err = parse_program("p(a).\nq(", &mut syms).unwrap_err();
        let DatalogError::Parse { line, .. } = err else {
            panic!()
        };
        assert_eq!(line, 2);
    }
}
