//! Property-based tests for the engine: plan-order invariance,
//! substitution laws, and parser/printer agreement.

use kind_datalog::{Atom, BodyItem, Engine, EvalOptions, Rule, Subst, Term, Var};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The body-literal order a rule is written in must not change the
    /// computed model (the planner may reorder internally).
    #[test]
    fn body_order_invariance(
        edges in prop::collection::vec((0u8..6, 0u8..6), 1..15),
        perm in 0usize..6
    ) {
        let facts: String = edges
            .iter()
            .map(|(a, b)| format!("e(n{a}, n{b})."))
            .collect::<Vec<_>>()
            .join("\n");
        // Same rule, six body orders (3 literals).
        let bodies = [
            "e(X,Y), e(Y,Z), X != Z",
            "e(X,Y), X != Z, e(Y,Z)",
            "X != Z, e(X,Y), e(Y,Z)",
            "e(Y,Z), e(X,Y), X != Z",
            "e(Y,Z), X != Z, e(X,Y)",
            "X != Z, e(Y,Z), e(X,Y)",
        ];
        let mut reference = Engine::new();
        reference.load(&facts).unwrap();
        reference.load(&format!("p(X,Z) :- {}.", bodies[0])).unwrap();
        let m0 = reference.run(&EvalOptions::default()).unwrap();
        let mut e = Engine::new();
        e.load(&facts).unwrap();
        e.load(&format!("p(X,Z) :- {}.", bodies[perm])).unwrap();
        let m = e.run(&EvalOptions::default()).unwrap();
        let mut q0 = reference.clone();
        let mut q1 = e.clone();
        prop_assert_eq!(
            q0.query_model(&m0, "p(X,Y)").unwrap().len(),
            q1.query_model(&m, "p(X,Y)").unwrap().len()
        );
    }

    /// match_term(pat, pat.apply(σ)) succeeds whenever σ grounds pat.
    #[test]
    fn match_apply_roundtrip(consts in prop::collection::vec(0u8..5, 1..4)) {
        let mut e = Engine::new();
        let f = e.sym("f");
        // pattern f(V0, V1, ... c...) with σ binding all vars.
        let mut subst = Subst::with_capacity(consts.len());
        let mut args = Vec::new();
        for (i, c) in consts.iter().enumerate() {
            args.push(Term::Var(Var(i as u32)));
            let val = e.constant(&format!("c{c}"));
            subst.bind(Var(i as u32), val);
        }
        let pat = Term::func(f, args);
        let ground = pat.apply(&subst);
        prop_assert!(ground.is_ground());
        let mut fresh = Subst::with_capacity(consts.len());
        prop_assert!(fresh.match_term(&pat, &ground));
        // And the recovered bindings agree.
        for i in 0..consts.len() {
            prop_assert_eq!(fresh.get(Var(i as u32)), subst.get(Var(i as u32)));
        }
    }

    /// A rule printed by the display adapter re-parses into a rule with
    /// the same semantics.
    #[test]
    fn display_reparse_same_model(edges in prop::collection::vec((0u8..5, 0u8..5), 1..10)) {
        let mut e = Engine::new();
        let facts: String = edges
            .iter()
            .map(|(a, b)| format!("e(n{a}, n{b})."))
            .collect::<Vec<_>>()
            .join("\n");
        e.load(&facts).unwrap();
        e.load("tc(X,Y) :- e(X,Y). tc(X,Y) :- tc(X,Z), e(Z,Y).").unwrap();
        let printed: Vec<String> = e
            .rules()
            .iter()
            .map(|r| r.display(e.symbols()).to_string())
            .collect();
        let mut e2 = Engine::new();
        e2.load(&facts).unwrap();
        for p in &printed {
            e2.load(p).unwrap();
        }
        let m1 = e.run(&EvalOptions::default()).unwrap();
        let m2 = e2.run(&EvalOptions::default()).unwrap();
        let mut q1 = e.clone();
        let mut q2 = e2.clone();
        prop_assert_eq!(
            q1.query_model(&m1, "tc(X,Y)").unwrap().len(),
            q2.query_model(&m2, "tc(X,Y)").unwrap().len()
        );
    }

    /// Compiled rules are always safe: every head variable is bound by
    /// some provided variable of the planned body.
    #[test]
    fn compile_never_accepts_unsafe(nvars in 1u32..4) {
        let mut e = Engine::new();
        let p = e.sym("p");
        let q = e.sym("q");
        // Head uses var `nvars` which the body (vars 0..nvars) never binds.
        let head = Atom::new(p, vec![Term::Var(Var(nvars))]);
        let body = vec![BodyItem::Pos(Atom::new(
            q,
            (0..nvars).map(|i| Term::Var(Var(i))).collect(),
        ))];
        let names = (0..=nvars).map(|i| format!("V{i}")).collect();
        prop_assert!(Rule::compile(head, body, nvars + 1, names).is_err());
    }
}
