//! Edge-case integration tests for the deductive engine.

use kind_datalog::{DatalogError, Engine, EvalOptions, Term};

fn run(src: &str) -> (Engine, kind_datalog::Model) {
    let mut e = Engine::new();
    e.load(src).unwrap();
    let m = e.run(&EvalOptions::default()).unwrap();
    (e, m)
}

#[test]
fn empty_program_empty_model() {
    let (_, m) = run("");
    assert!(m.facts.is_empty());
    assert_eq!(m.stats.derived, 0);
}

#[test]
fn facts_only_no_iterations_needed() {
    let (mut e, m) = run("p(a). p(b). q(a, b).");
    assert_eq!(m.facts.len(), 3);
    assert_eq!(e.query_model(&m, "p(X)").unwrap().len(), 2);
}

#[test]
fn rule_with_unknown_body_predicate_derives_nothing() {
    let (mut e, m) = run("p(X) :- never_asserted(X).");
    assert!(e.query_model(&m, "p(X)").unwrap().is_empty());
}

#[test]
fn self_join_same_predicate_twice() {
    let (mut e, m) = run("e(a,b). e(b,c). e(a,c).
         triangle(X,Y,Z) :- e(X,Y), e(Y,Z), e(X,Z).");
    assert_eq!(e.query_model(&m, "triangle(X,Y,Z)").unwrap().len(), 1);
}

#[test]
fn negation_of_zero_ary_atom() {
    let (mut e, m) = run("item(a).
         selected(X) :- item(X), not disabled.");
    assert_eq!(e.query_model(&m, "selected(X)").unwrap().len(), 1);
    let (mut e2, m2) = {
        let mut e = Engine::new();
        e.load("item(a). disabled. selected(X) :- item(X), not disabled.")
            .unwrap();
        let m = e.run(&EvalOptions::default()).unwrap();
        (e, m)
    };
    assert!(e2.query_model(&m2, "selected(X)").unwrap().is_empty());
}

#[test]
fn double_negation_through_helper() {
    let (mut e, m) = run("node(a). node(b). edge(a, b).
         has_out(X) :- edge(X, _).
         sink(X) :- node(X), not has_out(X).
         nonsink(X) :- node(X), not sink(X).");
    assert_eq!(e.query_model(&m, "sink(X)").unwrap().len(), 1);
    assert_eq!(e.query_model(&m, "nonsink(X)").unwrap().len(), 1);
}

#[test]
fn mutual_positive_recursion() {
    let (mut e, m) = run("base(0).
         even(X) :- base(X).
         odd(Y) :- even(X), Y = X + 1, Y < 10.
         even(Y) :- odd(X), Y = X + 1, Y < 10.");
    assert_eq!(e.query_model(&m, "even(X)").unwrap().len(), 5);
    assert_eq!(e.query_model(&m, "odd(X)").unwrap().len(), 5);
}

#[test]
fn aggregates_over_derived_predicates() {
    let (mut e, m) = run("e(a,b). e(b,c). e(c,d).
         tc(X,Y) :- e(X,Y).
         tc(X,Y) :- tc(X,Z), e(Z,Y).
         reach_count(X, N) :- e(X, _), N = count{ Y [X] : tc(X, Y) }.");
    let a = e.constant("a");
    assert!(m.holds(e.lookup("reach_count").unwrap(), &[a, Term::Int(3)]));
}

#[test]
fn nested_aggregate_rejected_in_recursion() {
    let mut e = Engine::new();
    e.load(
        "seed(1).
         p(X) :- seed(X).
         p(N) :- N = count{ X : p(X) }, N < 5.",
    )
    .unwrap();
    assert!(matches!(
        e.run(&EvalOptions::default()),
        Err(DatalogError::AggregateInRecursion { .. })
    ));
}

#[test]
fn min_max_over_mixed_terms_use_term_order() {
    let (mut e, m) = run("v(g, 3). v(g, 7).
         lo(G, M) :- M = min{ X [G] : v(G, X) }.
         hi(G, M) :- M = max{ X [G] : v(G, X) }.");
    let g = e.constant("g");
    assert!(m.holds(e.lookup("lo").unwrap(), &[g.clone(), Term::Int(3)]));
    assert!(m.holds(e.lookup("hi").unwrap(), &[g, Term::Int(7)]));
}

#[test]
fn sum_with_negative_numbers() {
    let (mut e, m) = run("v(a, -5). v(a, 10).
         s(G, S) :- S = sum{ X [G] : v(G, X) }.");
    let a = e.constant("a");
    assert!(m.holds(e.lookup("s").unwrap(), &[a, Term::Int(5)]));
}

#[test]
fn division_by_zero_fails_the_binding_not_the_program() {
    let (mut e, m) = run("n(0). n(2).
         inv(X, Y) :- n(X), Y = 10 / X.");
    // Only the X=2 row binds.
    assert_eq!(e.query_model(&m, "inv(X, Y)").unwrap().len(), 1);
}

#[test]
fn comparisons_across_types_are_total() {
    // Constants and ints compare via the structural term order: no panic,
    // deterministic result.
    let (mut e, m) = run("x(a). x(1).
         cmp(X, Y) :- x(X), x(Y), X < Y.");
    let n = e.query_model(&m, "cmp(X, Y)").unwrap().len();
    assert_eq!(n, 1);
}

#[test]
fn wfs_three_rounds_of_alternation() {
    // A chain of dependencies through negation that needs several
    // alternating sweeps to settle.
    let (mut e, m) = run("n(1). n(2). n(3). n(4).
         succ(1,2). succ(2,3). succ(3,4).
         w(X) :- succ(X, Y), not w(Y).");
    // w(3) (since w(4) false), not w(2), w(1).
    assert_eq!(e.query_model(&m, "w(X)").unwrap().len(), 2);
    assert!(m.undefined.is_empty());
}

#[test]
fn wfs_undefined_does_not_leak_into_true() {
    let (mut e, m) = run("a(x).
         p(X) :- a(X), not q(X).
         q(X) :- a(X), not p(X).
         definite(X) :- a(X).");
    assert_eq!(e.query_model(&m, "definite(X)").unwrap().len(), 1);
    let p = e.lookup("p").unwrap();
    let x = e.constant("x");
    assert!(!m.holds(p, std::slice::from_ref(&x)));
    assert!(m.is_undefined(p, &[x]));
}

#[test]
fn function_terms_as_first_class_values() {
    let (mut e, m) = run("obj(o1).
         boxed(pair(X, X)) :- obj(X).
         unboxed(Y) :- boxed(pair(Y, _)).");
    assert_eq!(e.query_model(&m, "unboxed(o1)").unwrap().len(), 1);
}

#[test]
fn deep_function_nesting_within_limit() {
    let mut e = Engine::new();
    e.load("p(z). p(s(X)) :- p(X).").unwrap();
    let m = e
        .run(&EvalOptions {
            max_term_depth: 30,
            ..Default::default()
        })
        .unwrap();
    assert_eq!(m.tuples(e.lookup("p").unwrap()).len(), 31);
}

#[test]
fn stats_report_applications_and_iterations() {
    let (_, m) = run("e(a,b). e(b,c).
         tc(X,Y) :- e(X,Y).
         tc(X,Y) :- tc(X,Z), e(Z,Y).");
    assert!(m.stats.iterations >= 2);
    assert!(m.stats.applications >= 3);
    assert_eq!(m.stats.derived, 3);
}

#[test]
fn query_with_repeated_variables() {
    let (mut e, m) = run("e(a,a). e(a,b).");
    // e(X,X) must only match the reflexive tuple.
    assert_eq!(e.query_model(&m, "e(X, X)").unwrap().len(), 1);
}

#[test]
fn strings_with_spaces_and_escapes() {
    let (mut e, m) = run(r#"loc(c1, "Pyramidal Cell\ndendrite")."#);
    let sols = e
        .query_model(&m, r#"loc(X, "Pyramidal Cell\ndendrite")"#)
        .unwrap();
    assert_eq!(sols.len(), 1);
}

#[test]
fn rule_order_does_not_change_model() {
    let (mut e1, m1) = run("tc(X,Y) :- tc(X,Z), e(Z,Y).
         tc(X,Y) :- e(X,Y).
         e(a,b). e(b,c).");
    let (mut e2, m2) = run("e(a,b). e(b,c).
         tc(X,Y) :- e(X,Y).
         tc(X,Y) :- tc(X,Z), e(Z,Y).");
    assert_eq!(
        e1.query_model(&m1, "tc(X,Y)").unwrap().len(),
        e2.query_model(&m2, "tc(X,Y)").unwrap().len()
    );
}

#[test]
fn index_off_computes_the_same_model() {
    let src = "e(a,b). e(b,c). e(c,a). e(c,d).
               tc(X,Y) :- e(X,Y).
               tc(X,Y) :- tc(X,Z), e(Z,Y).";
    let mut e1 = Engine::new();
    e1.load(src).unwrap();
    let m1 = e1.run(&EvalOptions::default()).unwrap();
    let mut e2 = Engine::new();
    e2.load(src).unwrap();
    let m2 = e2
        .run(&EvalOptions {
            use_index: false,
            ..Default::default()
        })
        .unwrap();
    assert_eq!(
        e1.query_model(&m1, "tc(X,Y)").unwrap().len(),
        e2.query_model(&m2, "tc(X,Y)").unwrap().len()
    );
}
