//! ANATOM — the anatomical knowledge source.
//!
//! In the paper, ANATOM is a curated neuroanatomy ontology whose
//! `nervous_system.has_a_star` partonomy drives the Example 4 view. We
//! reproduce its role with (a) a hand-written cerebellum/hippocampus
//! extension of the Figure 1 domain map — enough anatomy for the §5 query
//! — and (b) the scalable generated partonomy from `kind_dm::figures` for
//! benchmarks.

use kind_core::{MemoryWrapper, Wrapper};
use std::sync::Arc;

/// The cerebellum & hippocampus partonomy the §5 scenario needs, as DL
/// axioms extending Figure 1. Concept names follow the paper's examples
/// (parallel fibers, Purkinje/Pyramidal cells, spiny dendrites).
pub const NEURO_ANATOMY_AXIOMS: &str = "
    % --- gross anatomy ---------------------------------------------------
    Cerebellum, Hippocampus, Neostriatum < Brain_Region.
    Nervous_System < exists has_a.Brain_Region.

    % --- cerebellum (NCMIR world) ---------------------------------------
    Cerebellum < exists has_a.Cerebellar_Cortex.
    Cerebellar_Cortex < exists has_a.Purkinje_Layer.
    Cerebellar_Cortex < exists has_a.Granule_Layer.
    Purkinje_Layer < exists has_a.Purkinje_Cell.
    Granule_Layer < exists has_a.Granule_Cell.
    Purkinje_Cell < exists has_a.Purkinje_Dendrite.
    Purkinje_Dendrite < Dendrite.
    Purkinje_Dendrite < exists has_a.Purkinje_Spine.
    Purkinje_Spine < Spine.
    Parallel_Fiber < Axon.
    Granule_Cell < exists has_a.Parallel_Fiber.

    % --- hippocampus (SYNAPSE world) ------------------------------------
    Hippocampus < exists has_a.CA1.
    CA1 < exists has_a.Pyramidal_Layer.
    Pyramidal_Layer < exists has_a.Pyramidal_Cell.
    Pyramidal_Cell < exists has_a.Pyramidal_Dendrite.
    Pyramidal_Dendrite < Dendrite.
    Pyramidal_Dendrite < exists has_a.Pyramidal_Spine.
    Pyramidal_Spine < Spine.
";

/// Builds the full scenario domain map: Figure 1 plus the neuro anatomy.
pub fn scenario_domain_map() -> kind_dm::DomainMap {
    let mut dm = kind_dm::figures::figure1();
    kind_dm::load_axioms(&mut dm, NEURO_ANATOMY_AXIOMS).expect("anatomy axioms well-formed");
    dm
}

/// The ANATOM wrapper: contributes anatomy axioms at registration and
/// exports no instance data (it is pure knowledge). `extra_axioms` lets
/// benchmarks splice in a generated partonomy.
pub fn anatom_wrapper(extra_axioms: &str) -> Arc<dyn Wrapper> {
    let mut w = MemoryWrapper::new("ANATOM");
    w.dm_axioms = format!("{NEURO_ANATOMY_AXIOMS}\n{extra_axioms}");
    Arc::new(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kind_dm::Resolved;

    #[test]
    fn scenario_map_contains_both_worlds() {
        let dm = scenario_domain_map();
        let r = Resolved::new(&dm);
        // The two labs' anatomical entry points exist and connect.
        let pc = dm.lookup("Purkinje_Cell").unwrap();
        let pyc = dm.lookup("Pyramidal_Cell").unwrap();
        let sn = dm.lookup("Spiny_Neuron").unwrap();
        assert!(r.is_subconcept(pc, sn));
        assert!(r.is_subconcept(pyc, sn));
        // Parallel fibers are axons (compartments).
        let pf = dm.lookup("Parallel_Fiber").unwrap();
        let comp = dm.lookup("Compartment").unwrap();
        assert!(r.is_subconcept(pf, comp));
    }

    #[test]
    fn cerebellar_partonomy_reaches_spines() {
        let dm = scenario_domain_map();
        let r = Resolved::new(&dm);
        let cb = dm.lookup("Cerebellum").unwrap();
        let region = r.downward_closure("has_a", cb);
        let names: Vec<&str> = region.iter().filter_map(|&n| dm.name(n)).collect();
        assert!(names.contains(&"Purkinje_Cell"));
        assert!(names.contains(&"Purkinje_Dendrite"));
        assert!(names.contains(&"Purkinje_Spine"));
        // Hippocampal structures are NOT below the cerebellum.
        assert!(!names.contains(&"Pyramidal_Cell"));
    }

    #[test]
    fn partonomy_lub_of_purkinje_structures() {
        let dm = scenario_domain_map();
        let r = Resolved::new(&dm);
        let pc = dm.lookup("Purkinje_Cell").unwrap();
        let pd = dm.lookup("Purkinje_Dendrite").unwrap();
        // The dendrite is inside the cell: the region of correspondence
        // is the cell itself.
        assert_eq!(r.partonomy_lub("has_a", &[pc, pd]), Some(pc));
        // A Purkinje structure and a granule structure only meet higher
        // up, in the cerebellar cortex / cerebellum.
        let gc = dm.lookup("Granule_Cell").unwrap();
        let root = r.partonomy_lub("has_a", &[pd, gc]).unwrap();
        let name = dm.name(root).unwrap();
        assert!(
            name == "Cerebellar_Cortex" || name == "Cerebellum",
            "unexpected root {name}"
        );
    }
}
