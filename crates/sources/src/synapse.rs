//! SYNAPSE — the spine-morphometry source (§1).
//!
//! "The SYNAPSE laboratory studies dendritic spines of pyramidal cells in
//! the hippocampus … For each entity (spines, dendrites) researchers make
//! a number of measurements, and study how these measurements change
//! across age and species." Exports a `spine_morphometry` class with its
//! CM in the ER formalism.

use kind_core::{Anchor, Capability, MemoryWrapper, Wrapper};
use kind_gcm::GcmValue;
use kind_xml::Element;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Hippocampal locations SYNAPSE measures at.
pub const SYNAPSE_LOCATIONS: &[&str] = &["Pyramidal_Cell", "Pyramidal_Dendrite", "Pyramidal_Spine"];

fn synapse_cm() -> Element {
    kind_xml::parse(
        r#"<er name="SYNAPSE">
             <entity name="spine_morphometry">
               <attribute name="location" domain="string"/>
               <attribute name="spine_length" domain="int"/>
               <attribute name="spine_volume" domain="int"/>
               <attribute name="age" domain="int"/>
               <attribute name="species" domain="string"/>
             </entity>
             <isa sub="spine_morphometry" sup="measurement"/>
           </er>"#,
    )
    .expect("static CM parses")
    .root
}

/// Builds the SYNAPSE wrapper with `rows` reconstructed measurements.
pub fn synapse_wrapper(seed: u64, rows: usize) -> Arc<dyn Wrapper> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x51aa)); // distinct stream
    let mut w = MemoryWrapper::new("SYNAPSE");
    w.formalism = "er".into();
    w.cm = Some(synapse_cm());
    w.caps.push(Capability {
        class: "spine_morphometry".into(),
        pushable: vec!["location".into(), "species".into()],
    });
    w.anchor_decls.push(Anchor::ByAttr {
        class: "spine_morphometry".into(),
        attr: "location".into(),
    });
    let species = ["rat", "mouse"];
    for i in 0..rows {
        let loc = SYNAPSE_LOCATIONS[rng.gen_range(0..SYNAPSE_LOCATIONS.len())];
        w.add_row(
            "spine_morphometry",
            &format!("sm{i}"),
            vec![
                ("location", GcmValue::Id(loc.into())),
                ("spine_length", GcmValue::Int(rng.gen_range(5..40))),
                ("spine_volume", GcmValue::Int(rng.gen_range(1..20))),
                ("age", GcmValue::Int(rng.gen_range(1..30))),
                (
                    "species",
                    GcmValue::Id(species[rng.gen_range(0..species.len())].into()),
                ),
            ],
        );
    }
    Arc::new(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kind_core::SourceQuery;

    #[test]
    fn rows_are_hippocampal() {
        let w = synapse_wrapper(3, 30);
        let rows = w.query(&SourceQuery::scan("spine_morphometry")).unwrap();
        assert_eq!(rows.len(), 30);
        assert!(rows
            .iter()
            .all(|r| SYNAPSE_LOCATIONS.contains(&r.get_str("location").unwrap().as_str())));
    }

    #[test]
    fn cm_translates_through_er_plugin() {
        let w = synapse_wrapper(3, 2);
        let reg = kind_gcm::PluginRegistry::with_builtins();
        let cm = reg.translate(w.formalism(), &w.export_cm()).unwrap();
        assert_eq!(cm.name, "SYNAPSE");
        assert!(cm
            .decls
            .iter()
            .any(|d| matches!(d, kind_gcm::GcmDecl::Subclass { sub, sup }
                if sub == "spine_morphometry" && sup == "measurement")));
    }
}
