//! # kind-sources — the simulated Neuroscience multiple-worlds scenario
//!
//! The paper's evaluation scenario federates real laboratory databases we
//! do not have; this crate provides seeded synthetic stand-ins with the
//! same schemas, anchor structure, and query capabilities (see DESIGN.md,
//! "Substitutions"):
//!
//! * [`synapse`] — hippocampal spine morphometry (CM exported as **ER**);
//! * [`ncmir`] — cerebellar protein localization (CM exported as
//!   **UXF/UML**);
//! * [`senselab`] — neurotransmission records (CM exported as **RDFS**);
//! * [`anatomy`] — ANATOM: the anatomical knowledge contributed to the
//!   domain map;
//! * [`scenario`] — one-call construction of the fully registered
//!   mediator, with configurable noise sources for the source-selection
//!   ablation.
#![warn(missing_docs)]

pub mod anatomy;
pub mod ncmir;
pub mod scenario;
pub mod senselab;
pub mod synapse;

pub use anatomy::{anatom_wrapper, scenario_domain_map, NEURO_ANATOMY_AXIOMS};
pub use ncmir::{ncmir_wrapper, CALCIUM_BINDING, NCMIR_LOCATIONS};
pub use scenario::{
    build_scenario, build_scenario_with_faults, ncmir_update_rows, noise_protein_wrapper,
    ScenarioParams,
};
pub use senselab::senselab_wrapper;
pub use synapse::{synapse_wrapper, SYNAPSE_LOCATIONS};
