//! The complete multiple-worlds scenario: Figure 1's domain map plus
//! anatomy, with SENSELAB, NCMIR, SYNAPSE, ANATOM, and a configurable
//! number of *irrelevant* protein sources anchored in other brain regions
//! (for the §5 source-selection ablation).

use crate::anatomy::{anatom_wrapper, scenario_domain_map};
use crate::ncmir::ncmir_wrapper;
use crate::senselab::senselab_wrapper;
use crate::synapse::synapse_wrapper;
use kind_core::{
    Anchor, Capability, Fault, FaultInjector, Mediator, MemoryWrapper, SourcePolicy, Wrapper,
};
use kind_dm::ExecMode;
use kind_gcm::GcmValue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Scenario knobs (all deterministic for a fixed seed).
#[derive(Debug, Clone)]
pub struct ScenarioParams {
    /// RNG seed.
    pub seed: u64,
    /// SENSELAB neurotransmission rows.
    pub senselab_rows: usize,
    /// NCMIR protein rows.
    pub ncmir_rows: usize,
    /// SYNAPSE morphometry rows.
    pub synapse_rows: usize,
    /// Number of irrelevant protein sources (anchored hippocampally).
    pub noise_sources: usize,
    /// Rows per irrelevant source.
    pub noise_rows: usize,
    /// Domain-map edge execution mode.
    pub mode: ExecMode,
    /// Fetch-plane worker threads (0 = auto — one per source, capped by
    /// available parallelism; 1 = serial baseline). Results are
    /// bit-identical across settings; only wall-clock changes.
    pub fetch_threads: usize,
    /// Evaluate-plane worker threads (0 = auto — one per core; 1 = serial
    /// baseline). The parallel fixpoint is bit-identical to serial, so
    /// this knob too only changes wall clock.
    pub eval_threads: usize,
    /// End-to-end virtual-time budget per degradable operation (0 = no
    /// deadline). Sources that run past their slice are cut off with
    /// `DeadlineExceeded`; the answer completes from what landed in time.
    pub query_budget_ms: u64,
    /// Hedge threshold applied as the default source policy (0 = no
    /// hedging): a primary attempt slower than this races one backup
    /// attempt, first virtual-time success wins.
    pub hedge_after_ms: u64,
    /// Whether goal-directed queries (`answer`) apply the magic-sets
    /// demand transformation. Answer-preserving either way; full
    /// materialization never applies it.
    pub magic_sets: bool,
    /// Fetch-plane transport: scoped thread-per-job (default), or the
    /// overlapped executor that parks stalled attempts on a timer wheel.
    /// Bit-identical results either way; only wall clock and thread
    /// footprint change.
    pub fetch_mode: kind_core::FetchMode,
    /// Overlapped-transport admission cap: how many fetch jobs may be in
    /// flight at once (0 = unlimited).
    pub in_flight: usize,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            seed: 2001,
            senselab_rows: 40,
            ncmir_rows: 60,
            synapse_rows: 40,
            noise_sources: 4,
            noise_rows: 30,
            mode: ExecMode::Assertion,
            fetch_threads: 0,
            eval_threads: 0,
            query_budget_ms: 0,
            hedge_after_ms: 0,
            magic_sets: true,
            fetch_mode: kind_core::FetchMode::default(),
            in_flight: 0,
        }
    }
}

/// An irrelevant protein source: exports the same `protein_amount` class
/// as NCMIR but all its data anchors at hippocampal (non-cerebellar)
/// concepts, so the semantic index should prune it from Purkinje queries.
pub fn noise_protein_wrapper(name: &str, seed: u64, rows: usize) -> Arc<dyn Wrapper> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = MemoryWrapper::new(name);
    w.caps.push(Capability {
        class: "protein_amount".into(),
        pushable: vec!["location".into(), "ion_bound".into(), "protein_name".into()],
    });
    w.anchor_decls.push(Anchor::ByAttr {
        class: "protein_amount".into(),
        attr: "location".into(),
    });
    let locations = ["Pyramidal_Cell", "Pyramidal_Dendrite", "Pyramidal_Spine"];
    let proteins = ["Calbindin", "GFAP", "Synaptophysin"];
    for i in 0..rows {
        w.add_row(
            "protein_amount",
            &format!("np{i}"),
            vec![
                (
                    "protein_name",
                    GcmValue::Id(proteins[rng.gen_range(0..proteins.len())].into()),
                ),
                ("amount", GcmValue::Int(rng.gen_range(1..50))),
                (
                    "location",
                    GcmValue::Id(locations[rng.gen_range(0..locations.len())].into()),
                ),
                ("ion_bound", GcmValue::Id("calcium".into())),
                ("organism", GcmValue::Id("rat".into())),
            ],
        );
    }
    Arc::new(w)
}

/// A deterministic batch of *fresh* NCMIR `protein_amount` rows — the
/// update workload for the staged write plane. Row ids (`upd{batch}_{i}`)
/// are disjoint from the registered NCMIR rows (`pa{i}`) and across
/// batches, so loading them with [`Mediator::load_row`] (and retracting
/// them again with [`Mediator::retract_row`]) exercises incremental
/// republish against the warm §5 scenario without ever colliding with
/// existing objects.
pub fn ncmir_update_rows(seed: u64, batch: usize, rows: usize) -> Vec<kind_core::ObjectRow> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0xD17A).wrapping_add(batch as u64));
    (0..rows)
        .map(|i| kind_core::ObjectRow {
            id: format!("upd{batch}_{i}"),
            attrs: vec![
                (
                    "protein_name".into(),
                    GcmValue::Id(
                        crate::ncmir::CALCIUM_BINDING
                            [rng.gen_range(0..crate::ncmir::CALCIUM_BINDING.len())]
                        .into(),
                    ),
                ),
                ("amount".into(), GcmValue::Int(rng.gen_range(1..100))),
                (
                    "location".into(),
                    GcmValue::Id(
                        crate::ncmir::NCMIR_LOCATIONS
                            [rng.gen_range(0..crate::ncmir::NCMIR_LOCATIONS.len())]
                        .into(),
                    ),
                ),
                ("ion_bound".into(), GcmValue::Id("calcium".into())),
                ("organism".into(), GcmValue::Id("rat".into())),
            ],
        })
        .collect()
}

/// Builds the fully registered mediator for the scenario.
pub fn build_scenario(params: &ScenarioParams) -> Mediator {
    let mut m = Mediator::new(scenario_domain_map(), params.mode);
    m.federation_mut().set_fetch_threads(params.fetch_threads);
    m.set_fetch_mode(params.fetch_mode);
    m.set_in_flight_limit(params.in_flight);
    m.set_eval_threads(params.eval_threads);
    m.set_magic_sets(params.magic_sets);
    m.set_query_budget_ms(params.query_budget_ms);
    if params.hedge_after_ms > 0 {
        m.set_default_policy(SourcePolicy::with_hedge_after_ms(params.hedge_after_ms));
    }
    // ANATOM first: it may refine the map other anchors depend on.
    m.register(anatom_wrapper("")).expect("ANATOM registers");
    m.register(senselab_wrapper(params.seed, params.senselab_rows))
        .expect("SENSELAB registers");
    m.register(ncmir_wrapper(params.seed, params.ncmir_rows))
        .expect("NCMIR registers");
    m.register(synapse_wrapper(params.seed, params.synapse_rows))
        .expect("SYNAPSE registers");
    for k in 0..params.noise_sources {
        let name = format!("NOISE{k}");
        m.register(noise_protein_wrapper(
            &name,
            params.seed.wrapping_add(1000 + k as u64),
            params.noise_rows,
        ))
        .unwrap_or_else(|e| panic!("{name} registers: {e}"));
    }
    m
}

/// Like [`build_scenario`], but SENSELAB is wrapped in a
/// [`FaultInjector`] carrying `senselab_faults`. The injector shares the
/// mediator's virtual clock (so `Slow` faults interact with timeout
/// budgets) and is disarmed during registration, then armed — the fault
/// schedule targets query traffic, not the registration handshake.
///
/// Returns the mediator and the injector handle (for `arm`/`disarm` and
/// call-count assertions in degradation tests).
pub fn build_scenario_with_faults(
    params: &ScenarioParams,
    senselab_faults: Vec<Fault>,
) -> (Mediator, Arc<FaultInjector>) {
    let mut m = Mediator::new(scenario_domain_map(), params.mode);
    m.federation_mut().set_fetch_threads(params.fetch_threads);
    m.set_fetch_mode(params.fetch_mode);
    m.set_in_flight_limit(params.in_flight);
    m.set_eval_threads(params.eval_threads);
    m.set_magic_sets(params.magic_sets);
    m.set_query_budget_ms(params.query_budget_ms);
    if params.hedge_after_ms > 0 {
        m.set_default_policy(SourcePolicy::with_hedge_after_ms(params.hedge_after_ms));
    }
    let mut injector = FaultInjector::new(
        senselab_wrapper(params.seed, params.senselab_rows),
        m.clock(),
    );
    for f in senselab_faults {
        injector = injector.with_fault(f);
    }
    let injector = Arc::new(injector);
    injector.disarm();
    m.register(anatom_wrapper("")).expect("ANATOM registers");
    m.register(Arc::clone(&injector) as Arc<dyn Wrapper>)
        .expect("SENSELAB registers");
    m.register(ncmir_wrapper(params.seed, params.ncmir_rows))
        .expect("NCMIR registers");
    m.register(synapse_wrapper(params.seed, params.synapse_rows))
        .expect("SYNAPSE registers");
    for k in 0..params.noise_sources {
        let name = format!("NOISE{k}");
        m.register(noise_protein_wrapper(
            &name,
            params.seed.wrapping_add(1000 + k as u64),
            params.noise_rows,
        ))
        .unwrap_or_else(|e| panic!("{name} registers: {e}"));
    }
    injector.arm();
    (m, injector)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kind_core::{run_section5, NeuroSchema, Section5Query};

    fn scenario() -> Mediator {
        build_scenario(&ScenarioParams::default())
    }

    #[test]
    fn all_sources_register() {
        let m = scenario();
        assert_eq!(m.sources().len(), 8); // ANATOM + 3 labs + 4 noise
    }

    #[test]
    fn section5_query_end_to_end() {
        let mut m = scenario();
        let schema = NeuroSchema::default();
        let q = Section5Query {
            organism: "rat".into(),
            transmitting_compartment: "Parallel_Fiber".into(),
            ion: "calcium".into(),
        };
        let trace = run_section5(&mut m, &schema, &q, true).unwrap();
        // Step 1: parallel-fiber rows land on Purkinje structures.
        assert_eq!(
            trace.step1_pairs,
            vec![("Purkinje_Cell".to_string(), "Purkinje_Dendrite".to_string())]
        );
        // Step 2: only NCMIR survives source selection (noise sources are
        // hippocampal).
        assert_eq!(trace.candidate_sources, 5);
        assert_eq!(trace.selected_sources, vec!["NCMIR".to_string()]);
        // Step 3: calcium-binding proteins only.
        assert!(!trace.proteins.is_empty());
        assert!(trace
            .proteins
            .iter()
            .all(|p| crate::ncmir::CALCIUM_BINDING.contains(&p.as_str())));
        // Step 4: the distribution root is the Purkinje cell (the
        // dendrite is inside it) and the distribution is non-empty.
        assert_eq!(trace.root.as_deref(), Some("Purkinje_Cell"));
        assert!(!trace.distribution.is_empty());
    }

    #[test]
    fn ablation_without_index_contacts_all_candidates() {
        let mut m = scenario();
        let schema = NeuroSchema::default();
        let q = Section5Query {
            organism: "rat".into(),
            transmitting_compartment: "Parallel_Fiber".into(),
            ion: "calcium".into(),
        };
        let with = run_section5(&mut m, &schema, &q, true).unwrap();
        let mut m2 = scenario();
        let without = run_section5(&mut m2, &schema, &q, false).unwrap();
        assert_eq!(without.selected_sources.len(), 5);
        assert!(with.stats.source_queries < without.stats.source_queries);
        // Same answers either way: the noise sources hold no Purkinje
        // data, so pruning them is semantically transparent.
        assert_eq!(with.proteins, without.proteins);
        assert_eq!(with.distribution, without.distribution);
    }

    #[test]
    fn distribution_totals_roll_up() {
        let mut m = scenario();
        let schema = NeuroSchema::default();
        let q = Section5Query {
            organism: "rat".into(),
            transmitting_compartment: "Parallel_Fiber".into(),
            ion: "calcium".into(),
        };
        let trace = run_section5(&mut m, &schema, &q, true).unwrap();
        // For each protein, the root total is the max (everything below
        // rolls up into it).
        for p in &trace.proteins {
            let rows: Vec<_> = trace
                .distribution
                .iter()
                .filter(|d| &d.protein == p)
                .collect();
            if rows.is_empty() {
                continue;
            }
            let root_total = rows
                .iter()
                .find(|d| Some(d.concept.as_str()) == trace.root.as_deref())
                .map(|d| d.total)
                .unwrap_or(0);
            assert!(rows.iter().all(|d| d.total <= root_total), "{p}: {rows:?}");
        }
    }
}
