//! NCMIR — the protein-localization source (§1, §5).
//!
//! "The NCMIR laboratory studies the Purkinje Cells of the cerebellum …
//! the amount of different proteins found in each of these subdivisions."
//! Exports a `protein_amount` class (protein name, amount, location,
//! bound ion, organism) with its CM in the UXF/UML formalism. Locations
//! are cerebellar concepts; amounts are seeded-random.

use kind_core::{Anchor, Capability, MemoryWrapper, Wrapper};
use kind_gcm::GcmValue;
use kind_xml::Element;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Calcium-binding proteins of the scenario (the paper's demo uses the
/// Ryanodine Receptor).
pub const CALCIUM_BINDING: &[&str] = &[
    "Ryanodine_Receptor",
    "Calbindin",
    "Parvalbumin",
    "IP3_Receptor",
];

/// Non-calcium noise proteins.
pub const OTHER_PROTEINS: &[&str] = &["GFAP", "Synaptophysin"];

/// Cerebellar locations NCMIR measures at.
pub const NCMIR_LOCATIONS: &[&str] = &["Purkinje_Cell", "Purkinje_Dendrite", "Purkinje_Spine"];

fn ncmir_cm() -> Element {
    kind_xml::parse(
        r#"<uxf name="NCMIR">
             <class name="protein_amount">
               <attribute name="protein_name" type="string"/>
               <attribute name="amount" type="int"/>
               <attribute name="location" type="string"/>
               <attribute name="ion_bound" type="string"/>
               <attribute name="organism" type="string"/>
             </class>
           </uxf>"#,
    )
    .expect("static CM parses")
    .root
}

/// Builds the NCMIR wrapper with `rows` generated measurements.
pub fn ncmir_wrapper(seed: u64, rows: usize) -> Arc<dyn Wrapper> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x9c31)); // distinct stream
    let mut w = MemoryWrapper::new("NCMIR");
    w.formalism = "uxf".into();
    w.cm = Some(ncmir_cm());
    w.caps.push(Capability {
        class: "protein_amount".into(),
        pushable: vec!["location".into(), "ion_bound".into(), "protein_name".into()],
    });
    w.anchor_decls.push(Anchor::ByAttr {
        class: "protein_amount".into(),
        attr: "location".into(),
    });
    for i in 0..rows {
        let calcium = i % 3 != 0; // two thirds calcium-binding
        let protein = if calcium {
            CALCIUM_BINDING[rng.gen_range(0..CALCIUM_BINDING.len())]
        } else {
            OTHER_PROTEINS[rng.gen_range(0..OTHER_PROTEINS.len())]
        };
        let ion = if calcium { "calcium" } else { "sodium" };
        let loc = NCMIR_LOCATIONS[rng.gen_range(0..NCMIR_LOCATIONS.len())];
        w.add_row(
            "protein_amount",
            &format!("pa{i}"),
            vec![
                ("protein_name", GcmValue::Id(protein.into())),
                ("amount", GcmValue::Int(rng.gen_range(1..100))),
                ("location", GcmValue::Id(loc.into())),
                ("ion_bound", GcmValue::Id(ion.into())),
                ("organism", GcmValue::Id("rat".into())),
            ],
        );
    }
    Arc::new(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kind_core::SourceQuery;

    #[test]
    fn pushdown_by_location_and_ion() {
        let w = ncmir_wrapper(7, 60);
        let rows = w
            .query(
                &SourceQuery::scan("protein_amount")
                    .with("location", GcmValue::Id("Purkinje_Spine".into()))
                    .with("ion_bound", GcmValue::Id("calcium".into())),
            )
            .unwrap();
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|r| {
            r.get_str("location") == Some("Purkinje_Spine".into())
                && r.get_str("ion_bound") == Some("calcium".into())
        }));
        assert!(rows.len() < 60, "selection must prune");
    }

    #[test]
    fn calcium_rows_use_calcium_binders() {
        let w = ncmir_wrapper(7, 60);
        let rows = w
            .query(
                &SourceQuery::scan("protein_amount")
                    .with("ion_bound", GcmValue::Id("calcium".into())),
            )
            .unwrap();
        assert!(rows
            .iter()
            .all(|r| CALCIUM_BINDING.contains(&r.get_str("protein_name").unwrap().as_str())));
    }

    #[test]
    fn cm_translates_through_uxf_plugin() {
        let w = ncmir_wrapper(7, 4);
        let reg = kind_gcm::PluginRegistry::with_builtins();
        let cm = reg.translate(w.formalism(), &w.export_cm()).unwrap();
        assert_eq!(cm.name, "NCMIR");
        // class + 5 methods
        assert!(cm.decls.len() >= 6);
    }
}
