//! SENSELAB — the neurotransmission source (§5).
//!
//! Exports a `neurotransmission` class with the exact attributes the
//! paper lists: organism, transmitting neuron/compartment, receiving
//! neuron/compartment, neurotransmitter. The CM goes over the wire in the
//! RDFS-like formalism, exercising that plug-in. The generator seeds a
//! configurable number of "relevant" rows (rat, parallel-fiber →
//! Purkinje) among hippocampal and other-organism noise.

use kind_core::{Anchor, Capability, MemoryWrapper, Wrapper};
use kind_gcm::GcmValue;
use kind_xml::Element;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The RDFS-formalism CM export for SENSELAB.
fn senselab_cm() -> Element {
    kind_xml::parse(
        r#"<rdf name="SENSELAB">
             <rdfs:Class rdf:ID="neurotransmission"/>
             <rdf:Property rdf:ID="organism">
               <rdfs:domain rdf:resource="neurotransmission"/>
               <rdfs:range rdf:resource="literal"/>
             </rdf:Property>
             <rdf:Property rdf:ID="transmitting_neuron">
               <rdfs:domain rdf:resource="neurotransmission"/>
               <rdfs:range rdf:resource="literal"/>
             </rdf:Property>
             <rdf:Property rdf:ID="transmitting_compartment">
               <rdfs:domain rdf:resource="neurotransmission"/>
               <rdfs:range rdf:resource="literal"/>
             </rdf:Property>
             <rdf:Property rdf:ID="receiving_neuron">
               <rdfs:domain rdf:resource="neurotransmission"/>
               <rdfs:range rdf:resource="literal"/>
             </rdf:Property>
             <rdf:Property rdf:ID="receiving_compartment">
               <rdfs:domain rdf:resource="neurotransmission"/>
               <rdfs:range rdf:resource="literal"/>
             </rdf:Property>
             <rdf:Property rdf:ID="neurotransmitter">
               <rdfs:domain rdf:resource="neurotransmission"/>
               <rdfs:range rdf:resource="literal"/>
             </rdf:Property>
           </rdf>"#,
    )
    .expect("static CM parses")
    .root
}

/// Builds the SENSELAB wrapper with `rows` generated records, of which a
/// deterministic ~25% are the paper's relevant pattern (rat organism,
/// parallel-fiber transmission onto Purkinje structures).
pub fn senselab_wrapper(seed: u64, rows: usize) -> Arc<dyn Wrapper> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = MemoryWrapper::new("SENSELAB");
    w.formalism = "rdfs".into();
    w.cm = Some(senselab_cm());
    w.caps.push(Capability {
        class: "neurotransmission".into(),
        pushable: vec![
            "organism".into(),
            "transmitting_compartment".into(),
            "neurotransmitter".into(),
        ],
    });
    // Anchor the receiving structures: that is where this source's data
    // "lives" in the domain map.
    w.anchor_decls.push(Anchor::ByAttr {
        class: "neurotransmission".into(),
        attr: "receiving_neuron".into(),
    });
    w.anchor_decls.push(Anchor::ByAttr {
        class: "neurotransmission".into(),
        attr: "receiving_compartment".into(),
    });
    for i in 0..rows {
        let relevant = i % 4 == 0;
        let (org, tn, tc, rn, rc, nt) = if relevant {
            (
                "rat",
                "Granule_Cell",
                "Parallel_Fiber",
                "Purkinje_Cell",
                "Purkinje_Dendrite",
                "glutamate",
            )
        } else {
            let orgs = ["rat", "mouse", "human"];
            let org = orgs[rng.gen_range(0..orgs.len())];
            (
                org,
                "Pyramidal_Cell",
                "Axon",
                "Pyramidal_Cell",
                "Pyramidal_Dendrite",
                "glutamate",
            )
        };
        w.add_row(
            "neurotransmission",
            &format!("nt{i}"),
            vec![
                ("organism", GcmValue::Id(org.into())),
                ("transmitting_neuron", GcmValue::Id(tn.into())),
                ("transmitting_compartment", GcmValue::Id(tc.into())),
                ("receiving_neuron", GcmValue::Id(rn.into())),
                ("receiving_compartment", GcmValue::Id(rc.into())),
                ("neurotransmitter", GcmValue::Id(nt.into())),
            ],
        );
    }
    Arc::new(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kind_core::SourceQuery;

    #[test]
    fn generator_is_deterministic() {
        let a = senselab_wrapper(42, 40);
        let b = senselab_wrapper(42, 40);
        let qa = a.query(&SourceQuery::scan("neurotransmission")).unwrap();
        let qb = b.query(&SourceQuery::scan("neurotransmission")).unwrap();
        assert_eq!(qa, qb);
        assert_eq!(qa.len(), 40);
    }

    #[test]
    fn relevant_rows_present() {
        let w = senselab_wrapper(1, 40);
        let rows = w
            .query(
                &SourceQuery::scan("neurotransmission")
                    .with("organism", GcmValue::Id("rat".into()))
                    .with(
                        "transmitting_compartment",
                        GcmValue::Id("Parallel_Fiber".into()),
                    ),
            )
            .unwrap();
        assert_eq!(rows.len(), 10); // every 4th of 40
        assert!(rows
            .iter()
            .all(|r| r.get_str("receiving_neuron") == Some("Purkinje_Cell".into())));
    }

    #[test]
    fn cm_translates_through_rdfs_plugin() {
        let w = senselab_wrapper(1, 4);
        let reg = kind_gcm::PluginRegistry::with_builtins();
        let cm = reg.translate(w.formalism(), &w.export_cm()).unwrap();
        assert_eq!(cm.name, "SENSELAB");
        assert!(cm.decls.len() >= 7);
    }
}
