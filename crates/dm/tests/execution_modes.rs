//! Cross-module tests for domain-map execution: both modes over the
//! paper's real maps, skolem behaviour, and the concept-level closures.

use kind_datalog::EvalOptions;
use kind_dm::{figures, load_axioms, rules, DomainMap, ExecMode, DM_OPS_RULES};
use kind_flogic::FLogic;

fn engine(dm: &DomainMap, mode: ExecMode, data: &str) -> FLogic {
    let mut fl = FLogic::new();
    fl.load_datalog(DM_OPS_RULES).unwrap();
    fl.load(&rules::compile(dm, mode).text).unwrap();
    fl.load(data).unwrap();
    fl
}

#[test]
fn figure1_constraint_mode_on_complete_data_is_silent() {
    let dm = figures::figure1();
    // A fully fleshed-out purkinje cell: compartment, spine, protein,
    // activity, process. Satisfies every existential demand along its
    // chain.
    let fl = engine(
        &dm,
        ExecMode::Constraint,
        r#"p1 : "Purkinje_Cell".
           d1 : "Dendrite". d1 : "Compartment".
           b1 : "Branch". sh1 : "Shaft".
           s1 : "Spine".
           ibp1 : "Ion_Binding_Protein". act1 : "Ion_Activity".
           nt1 : "Neurotransmission". pr1 : "Protein".
           relinst("has", p1, d1).
           relinst("has", p1, s1).
           relinst("has", d1, b1).
           relinst("has", sh1, s1).
           relinst("contains", s1, ibp1).
           relinst("controls", ibp1, act1).
           relinst("subprocess_of", act1, nt1).
           relinst("regulates", s1, act1)."#,
    );
    let m = fl.run().unwrap();
    // Witnesses may only concern entities we deliberately left bare
    // (e.g. d1 is also a neuron-compartment owner? no). Check the chain
    // entities are clean:
    let ws = fl.inconsistency_witnesses(&m);
    for w in &ws {
        assert!(
            !w.contains(",p1)") && !w.contains(",s1)"),
            "unexpected witness for complete entities: {w} (all: {ws:?})"
        );
    }
}

#[test]
fn figure1_assertion_mode_builds_the_virtual_world() {
    let dm = figures::figure1();
    // A single bare Purkinje cell: assertion mode must spin up the whole
    // existential chain as placeholders (compartment, spine, protein,
    // activity, neurotransmission...).
    let fl = engine(&dm, ExecMode::Assertion, r#"p1 : "Purkinje_Cell"."#);
    let opts = EvalOptions {
        max_term_depth: 6,
        ..Default::default()
    };
    let m = fl.run_with(&opts).unwrap();
    for class in [
        "Spine",
        "Compartment",
        "Ion_Binding_Protein",
        "Ion_Activity",
        "Neurotransmission",
    ] {
        let members = fl.instances_of(&m, class);
        assert!(
            members.iter().any(|x| x.starts_with("sk(")),
            "expected a placeholder {class}, got {members:?}"
        );
    }
    // And the paper's eqv recognition works in the virtual world: p1 is
    // a Neuron with a spine, hence a Spiny_Neuron.
    assert!(fl.is_instance(&m, "p1", "Spiny_Neuron"));
}

#[test]
fn figure3_all_edge_types_fillers_after_registration() {
    let full = figures::figure3();
    let fl = engine(
        &full,
        ExecMode::Assertion,
        r#"m1 : "MyNeuron". d9 : anything.
           relinst("has", m1, d9)."#,
    );
    let m = fl.run().unwrap();
    // ∀has.MyDendrite types every filler; MyDendrite ≡ Dendrite ⊓
    // ∃exp.Dopamine_R then propagates.
    assert!(fl.is_instance(&m, "d9", "MyDendrite"));
    assert!(fl.is_instance(&m, "d9", "Dendrite"));
}

#[test]
fn compiled_edge_count_matches_graph() {
    let dm = figures::figure1();
    let prog = rules::compile(&dm, ExecMode::Assertion);
    // Every non-member edge with a named source compiles.
    let compilable = dm
        .edges()
        .iter()
        .filter(|e| dm.name(e.from).is_some() && e.kind != kind_dm::EdgeKind::Member)
        .count();
    assert_eq!(prog.edges_compiled, compilable);
}

#[test]
fn has_a_star_matches_resolved_dc() {
    // The datalog-side has_a_star and the pure-graph dc must agree.
    let mut dm = DomainMap::new();
    load_axioms(
        &mut dm,
        "Dendrite < Compartment.
         Neuron < exists has_a.Compartment.
         Dendrite < exists has_a.Branch.
         Purkinje_Cell < Neuron.",
    )
    .unwrap();
    let fl = engine(&dm, ExecMode::Assertion, "");
    let m = fl.run().unwrap();
    let mut e = fl.engine().clone();
    let datalog_star: std::collections::HashSet<(String, String)> = e
        .query_model(&m, "has_a_star(X, Y)")
        .unwrap()
        .into_iter()
        .map(|row| {
            let e2 = fl.engine();
            (e2.show(&row[0]), e2.show(&row[1]))
        })
        .collect();
    let r = kind_dm::Resolved::new(&dm);
    let graph_star: std::collections::HashSet<(String, String)> = r
        .dc_pairs("has_a")
        .into_iter()
        .filter_map(|(a, b)| Some((dm.name(a)?.to_string(), dm.name(b)?.to_string())))
        .collect();
    assert_eq!(datalog_star, graph_star);
}

#[test]
fn generated_anatomy_compiles_and_runs_both_modes() {
    let dm = figures::anatomy_generated(3, 2, 1);
    for mode in [ExecMode::Constraint, ExecMode::Assertion] {
        let fl = engine(&dm, mode, r#"x0 : "Nervous_System"."#);
        let opts = EvalOptions {
            max_term_depth: 4,
            ..Default::default()
        };
        let m = fl.run_with(&opts).unwrap();
        assert!(!m.facts.is_empty());
    }
}

#[test]
fn dot_renders_generated_maps() {
    let dm = figures::anatomy_generated(2, 2, 1);
    let dot = kind_dm::dot::to_dot(&dm, &[]);
    assert!(dot.lines().filter(|l| l.contains("shape=box")).count() >= dm.concepts().count());
}
