//! Property tests: the structural subsumption reasoner is sound w.r.t.
//! graph reachability on randomly generated told hierarchies, and lub is
//! a true upper bound.

use kind_dm::subsume::Subsumption;
use kind_dm::{parse_axioms, ConceptExpr, DomainMap, Resolved};
use proptest::prelude::*;

fn atom(i: usize) -> ConceptExpr {
    ConceptExpr::Atomic(format!("C{i}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// On a random acyclic told hierarchy, reasoner subsumption must
    /// coincide exactly with graph reachability (told axioms carry no
    /// extra structure for the reasoner to exploit, so soundness and
    /// completeness both hold here).
    #[test]
    fn told_hierarchy_reasoner_equals_graph(
        parents in prop::collection::vec(0usize..14, 14)
    ) {
        let mut text = String::new();
        for (i, &p) in parents.iter().enumerate() {
            let child = i + 1;
            let parent = p % child;
            text.push_str(&format!("C{child} < C{parent}.\n"));
        }
        let axioms = parse_axioms(&text).unwrap();
        let reasoner = Subsumption::new(&axioms);
        let mut dm = DomainMap::new();
        kind_dm::load_axioms(&mut dm, &text).unwrap();
        let r = Resolved::new(&dm);
        for a in 0..15usize {
            for b in 0..15usize {
                let graph = r.is_subconcept(
                    dm.lookup(&format!("C{a}")).unwrap(),
                    dm.lookup(&format!("C{b}")).unwrap(),
                );
                let logic = reasoner.subsumes(&atom(b), &atom(a));
                prop_assert_eq!(graph, logic, "C{} ⊑ C{}: graph={} logic={}", a, b, graph, logic);
            }
        }
    }

    /// Subsumption is reflexive and transitive on random hierarchies
    /// with definitions mixed in.
    #[test]
    fn subsumption_is_a_preorder(
        parents in prop::collection::vec(0usize..8, 8),
        def_targets in prop::collection::vec(0usize..8, 0..3)
    ) {
        let mut text = String::new();
        for (i, &p) in parents.iter().enumerate() {
            let child = i + 1;
            text.push_str(&format!("C{child} < C{}.\n", p % child));
        }
        // A few defined concepts on top.
        for (k, &t) in def_targets.iter().enumerate() {
            text.push_str(&format!("D{k} = C{t} and exists r.C0.\n"));
        }
        let axioms = parse_axioms(&text).unwrap();
        let s = Subsumption::new(&axioms);
        let mut names: Vec<ConceptExpr> = (0..9).map(atom).collect();
        for k in 0..def_targets.len() {
            names.push(ConceptExpr::Atomic(format!("D{k}")));
        }
        for x in &names {
            prop_assert!(s.subsumes(x, x), "reflexivity failed for {x}");
        }
        for x in &names {
            for y in &names {
                for z in &names {
                    if s.subsumes(y, x) && s.subsumes(z, y) {
                        prop_assert!(
                            s.subsumes(z, x),
                            "transitivity failed: {x} ⊑ {y} ⊑ {z}"
                        );
                    }
                }
            }
        }
    }

    /// partonomy_lub really is an upper bound: every input concept is in
    /// the downward closure of the result.
    #[test]
    fn partonomy_lub_is_upper_bound(
        links in prop::collection::vec((0usize..10, 0usize..10), 1..14)
    ) {
        let mut dm = DomainMap::new();
        for i in 0..10usize {
            dm.concept(&format!("R{i}"));
        }
        for &(a, b) in &links {
            if a != b {
                dm.ex(&format!("R{a}"), "has_a", &format!("R{b}"));
            }
        }
        let r = Resolved::new(&dm);
        let x = dm.lookup("R1").unwrap();
        let y = dm.lookup("R2").unwrap();
        if let Some(l) = r.partonomy_lub("has_a", &[x, y]) {
            let region = r.downward_closure("has_a", l);
            prop_assert!(region.contains(&x), "lub region must contain R1");
            prop_assert!(region.contains(&y), "lub region must contain R2");
        }
    }
}
