//! Error type for the domain-map crate.

use std::fmt;

/// Errors from domain-map parsing, lowering, or execution.
#[derive(Debug)]
pub enum DmError {
    /// Malformed DL axiom text.
    AxiomParse {
        /// Byte offset of the error.
        offset: usize,
        /// Description.
        message: String,
    },
    /// A named concept does not exist in the map.
    UnknownConcept {
        /// The missing name.
        name: String,
    },
    /// Error from the deductive engine.
    Datalog(kind_datalog::DatalogError),
}

impl fmt::Display for DmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmError::AxiomParse { offset, message } => {
                write!(f, "axiom parse error at offset {offset}: {message}")
            }
            DmError::UnknownConcept { name } => write!(f, "unknown concept `{name}`"),
            DmError::Datalog(e) => write!(f, "datalog: {e}"),
        }
    }
}

impl std::error::Error for DmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DmError::Datalog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kind_datalog::DatalogError> for DmError {
    fn from(e: kind_datalog::DatalogError) -> Self {
        DmError::Datalog(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, DmError>;
