//! The semantic index: anchoring source data in the domain map.
//!
//! "As part of registering a source's CM with the mediator, the wrapper
//! creates a *semantic index* of its data into the domain map. … these
//! indexes not only semantically correlate the multiple worlds data …
//! they are also useful during query processing, for example, to select
//! relevant sources" (abstract; §4 "Registering Source Data"; §5 step 2).
//!
//! Anchoring tags each exported object with the concept(s) it instantiates
//! — *without* changing the domain map itself.

use crate::graph::NodeId;
use crate::ops::Resolved;
use std::collections::{HashMap, HashSet};

/// A registered source's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub u32);

impl std::fmt::Display for SourceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "src{}", self.0)
    }
}

/// The mediator's semantic index: concept → sources with data anchored
/// there (with object counts), plus the reverse map.
#[derive(Debug, Clone, Default)]
pub struct SemanticIndex {
    /// concept → source → number of anchored objects.
    by_concept: HashMap<NodeId, HashMap<SourceId, usize>>,
    /// source → concepts it anchors at.
    by_source: HashMap<SourceId, HashSet<NodeId>>,
}

impl SemanticIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `source` anchors one object at `concept`.
    pub fn anchor(&mut self, source: SourceId, concept: NodeId) {
        self.anchor_many(source, concept, 1);
    }

    /// Records `count` anchored objects at once.
    pub fn anchor_many(&mut self, source: SourceId, concept: NodeId, count: usize) {
        if count == 0 {
            return;
        }
        *self
            .by_concept
            .entry(concept)
            .or_default()
            .entry(source)
            .or_insert(0) += count;
        self.by_source.entry(source).or_default().insert(concept);
    }

    /// The sources with data anchored *exactly* at `concept`.
    pub fn sources_at(&self, concept: NodeId) -> Vec<SourceId> {
        let mut v: Vec<SourceId> = self
            .by_concept
            .get(&concept)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        v.sort();
        v
    }

    /// **Source selection** (§5 step 2): the sources with data anchored at
    /// `concept` or at any concept in its isa-descendant cone. A query
    /// about "Dendrite" is answerable by a source anchored at
    /// "Purkinje_Cell dendrite" data one level down.
    pub fn sources_below(&self, resolved: &Resolved, concept: NodeId) -> Vec<SourceId> {
        let mut out: HashSet<SourceId> = HashSet::new();
        for &d in resolved.descendants(concept).iter() {
            if let Some(m) = self.by_concept.get(&d) {
                out.extend(m.keys().copied());
            }
        }
        let mut v: Vec<SourceId> = out.into_iter().collect();
        v.sort();
        v
    }

    /// Sources relevant to *all* of the given concepts (intersection of
    /// per-concept cones) — the neuron/compartment pair selection of §5.
    pub fn sources_for_all(&self, resolved: &Resolved, concepts: &[NodeId]) -> Vec<SourceId> {
        let mut iter = concepts.iter();
        let Some(&first) = iter.next() else {
            return Vec::new();
        };
        let mut acc: HashSet<SourceId> = self.sources_below(resolved, first).into_iter().collect();
        for &c in iter {
            let s: HashSet<SourceId> = self.sources_below(resolved, c).into_iter().collect();
            acc.retain(|x| s.contains(x));
        }
        let mut v: Vec<SourceId> = acc.into_iter().collect();
        v.sort();
        v
    }

    /// The concepts `source` anchors at.
    pub fn concepts_of(&self, source: SourceId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .by_source
            .get(&source)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort();
        v
    }

    /// Number of objects `source` anchored at `concept`.
    pub fn count(&self, source: SourceId, concept: NodeId) -> usize {
        self.by_concept
            .get(&concept)
            .and_then(|m| m.get(&source))
            .copied()
            .unwrap_or(0)
    }

    /// Total anchored objects across all sources and concepts.
    pub fn total_anchors(&self) -> usize {
        self.by_concept.values().flat_map(|m| m.values()).sum()
    }

    /// All registered sources.
    pub fn sources(&self) -> Vec<SourceId> {
        let mut v: Vec<SourceId> = self.by_source.keys().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axiom::load_axioms;
    use crate::graph::DomainMap;

    fn setup() -> (DomainMap, Resolved, SemanticIndex) {
        let mut dm = DomainMap::new();
        load_axioms(
            &mut dm,
            "Purkinje_Cell, Pyramidal_Cell < Spiny_Neuron.
             Spiny_Neuron < Neuron.
             Spine < Compartment.",
        )
        .unwrap();
        let r = Resolved::new(&dm);
        (dm, r, SemanticIndex::new())
    }

    #[test]
    fn anchoring_counts() {
        let (dm, _, mut idx) = setup();
        let pc = dm.lookup("Purkinje_Cell").unwrap();
        idx.anchor(SourceId(0), pc);
        idx.anchor_many(SourceId(0), pc, 4);
        assert_eq!(idx.count(SourceId(0), pc), 5);
        assert_eq!(idx.total_anchors(), 5);
    }

    #[test]
    fn source_selection_descends_the_cone() {
        let (dm, r, mut idx) = setup();
        let pc = dm.lookup("Purkinje_Cell").unwrap();
        let py = dm.lookup("Pyramidal_Cell").unwrap();
        let neuron = dm.lookup("Neuron").unwrap();
        idx.anchor(SourceId(0), pc); // NCMIR-like: purkinje data
        idx.anchor(SourceId(1), py); // SYNAPSE-like: pyramidal data
                                     // A query about neurons is served by both.
        assert_eq!(
            idx.sources_below(&r, neuron),
            vec![SourceId(0), SourceId(1)]
        );
        // A query about purkinje cells only by source 0.
        assert_eq!(idx.sources_below(&r, pc), vec![SourceId(0)]);
        // Exact anchoring at Neuron: nobody.
        assert!(idx.sources_at(neuron).is_empty());
    }

    #[test]
    fn intersection_selection() {
        let (dm, r, mut idx) = setup();
        let pc = dm.lookup("Purkinje_Cell").unwrap();
        let spine = dm.lookup("Spine").unwrap();
        let comp = dm.lookup("Compartment").unwrap();
        let neuron = dm.lookup("Neuron").unwrap();
        idx.anchor(SourceId(0), pc);
        idx.anchor(SourceId(0), spine);
        idx.anchor(SourceId(1), pc);
        // Only source 0 has both neuron-cone and compartment-cone data.
        assert_eq!(idx.sources_for_all(&r, &[neuron, comp]), vec![SourceId(0)]);
        assert_eq!(
            idx.sources_for_all(&r, &[neuron]),
            vec![SourceId(0), SourceId(1)]
        );
        assert!(idx.sources_for_all(&r, &[]).is_empty());
    }

    #[test]
    fn reverse_map() {
        let (dm, _, mut idx) = setup();
        let pc = dm.lookup("Purkinje_Cell").unwrap();
        let spine = dm.lookup("Spine").unwrap();
        idx.anchor(SourceId(7), pc);
        idx.anchor(SourceId(7), spine);
        assert_eq!(idx.concepts_of(SourceId(7)).len(), 2);
        assert_eq!(idx.sources(), vec![SourceId(7)]);
    }
}
