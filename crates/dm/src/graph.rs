//! The domain-map graph: concepts, roles, and the six edge kinds of
//! Definition 1.
//!
//! A domain map is "a finite set comprising (i) description logic facts,
//! and (ii) logic rules, both involving finite sets C (concepts) and R
//! (roles). Facts are visualized as edge-labeled digraphs." The DL
//! formulas for edges:
//!
//! | edge                | DL reading            |
//! |---------------------|-----------------------|
//! | `C → D`             | `C ⊑ D` (isa)         |
//! | `C —r→ D`           | `C ⊑ ∃r.D` (ex)       |
//! | `C —ALL:r→ D`       | `C ⊑ ∀r.D` (all)      |
//! | `AND →ᵢ {Cᵢ}`       | `C₁ ⊓ … ⊓ Cₙ` (and)   |
//! | `OR →ᵢ {Cᵢ}`        | `C₁ ⊔ … ⊔ Cₙ` (or)    |
//! | `C =→ D`            | `C ≡ D` (eqv)         |

use std::collections::HashMap;
use std::fmt;

/// A node handle in a domain map (a named concept or an anonymous
/// AND/OR node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// A named concept.
    Concept(String),
    /// An anonymous conjunction node.
    And,
    /// An anonymous disjunction node.
    Or,
}

/// The label of an edge (Definition 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeKind {
    /// `C ⊑ D` — unlabeled gray edge in the figures.
    Isa,
    /// `C ⊑ ∃r.D` — edge labeled with role `r`.
    Ex(String),
    /// `C ⊑ ∀r.D` — edge labeled `ALL: r`.
    All(String),
    /// `C ≡ D` — edge labeled `=`.
    Eqv,
    /// Membership edge from an AND/OR node to one of its operands.
    Member,
}

/// A directed, labeled edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
    /// Label.
    pub kind: EdgeKind,
}

/// A domain map: the mediator's "semantic coordinate system" (§6).
#[derive(Debug, Clone, Default)]
pub struct DomainMap {
    nodes: Vec<NodeKind>,
    by_name: HashMap<String, NodeId>,
    edges: Vec<Edge>,
    /// Outgoing edge indices per node.
    out: Vec<Vec<u32>>,
    /// Incoming edge indices per node.
    inc: Vec<Vec<u32>>,
}

impl DomainMap {
    /// An empty domain map.
    pub fn new() -> Self {
        Self::default()
    }

    fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many nodes"));
        self.nodes.push(kind);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        id
    }

    /// The node for `name`, creating it if needed.
    pub fn concept(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.add_node(NodeKind::Concept(name.to_string()));
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up a concept without creating it.
    pub fn lookup(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// A fresh anonymous AND node with the given members.
    pub fn and_node(&mut self, members: &[NodeId]) -> NodeId {
        let id = self.add_node(NodeKind::And);
        for &m in members {
            self.add_edge(id, m, EdgeKind::Member);
        }
        id
    }

    /// A fresh anonymous OR node with the given members.
    pub fn or_node(&mut self, members: &[NodeId]) -> NodeId {
        let id = self.add_node(NodeKind::Or);
        for &m in members {
            self.add_edge(id, m, EdgeKind::Member);
        }
        id
    }

    /// Adds an edge (idempotent: duplicate edges are ignored).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, kind: EdgeKind) {
        let e = Edge { from, to, kind };
        if self.out[from.index()]
            .iter()
            .any(|&i| self.edges[i as usize] == e)
        {
            return;
        }
        let idx = u32::try_from(self.edges.len()).expect("too many edges");
        self.out[from.index()].push(idx);
        self.inc[to.index()].push(idx);
        self.edges.push(e);
    }

    /// `sub ⊑ sup`.
    pub fn isa(&mut self, sub: &str, sup: &str) {
        let (s, p) = (self.concept(sub), self.concept(sup));
        self.add_edge(s, p, EdgeKind::Isa);
    }

    /// `c ⊑ ∃role.d`.
    pub fn ex(&mut self, c: &str, role: &str, d: &str) {
        let (s, t) = (self.concept(c), self.concept(d));
        self.add_edge(s, t, EdgeKind::Ex(role.to_string()));
    }

    /// `c ⊑ ∀role.d`.
    pub fn all(&mut self, c: &str, role: &str, d: &str) {
        let (s, t) = (self.concept(c), self.concept(d));
        self.add_edge(s, t, EdgeKind::All(role.to_string()));
    }

    /// `c ≡ d`.
    pub fn eqv(&mut self, c: &str, d: &str) {
        let (s, t) = (self.concept(c), self.concept(d));
        self.add_edge(s, t, EdgeKind::Eqv);
    }

    /// The kind of a node.
    pub fn node_kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.index()]
    }

    /// The concept name of a node (None for AND/OR nodes).
    pub fn name(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id.index()] {
            NodeKind::Concept(n) => Some(n),
            _ => None,
        }
    }

    /// All nodes.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All named concepts.
    pub fn concepts(&self) -> impl Iterator<Item = (NodeId, &str)> {
        self.node_ids()
            .filter_map(|id| self.name(id).map(|n| (id, n)))
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Outgoing edges of a node.
    pub fn out_edges(&self, id: NodeId) -> impl Iterator<Item = &Edge> {
        self.out[id.index()]
            .iter()
            .map(|&i| &self.edges[i as usize])
    }

    /// Incoming edges of a node.
    pub fn in_edges(&self, id: NodeId) -> impl Iterator<Item = &Edge> {
        self.inc[id.index()]
            .iter()
            .map(|&i| &self.edges[i as usize])
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The distinct role names used on `ex`/`all` edges.
    pub fn roles(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .edges
            .iter()
            .filter_map(|e| match &e.kind {
                EdgeKind::Ex(r) | EdgeKind::All(r) => Some(r.as_str()),
                _ => None,
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concepts_are_interned() {
        let mut dm = DomainMap::new();
        let a = dm.concept("Neuron");
        let b = dm.concept("Neuron");
        assert_eq!(a, b);
        assert_eq!(dm.node_count(), 1);
    }

    #[test]
    fn edges_are_deduplicated() {
        let mut dm = DomainMap::new();
        dm.isa("Axon", "Compartment");
        dm.isa("Axon", "Compartment");
        assert_eq!(dm.edge_count(), 1);
    }

    #[test]
    fn ex_edges_carry_roles() {
        let mut dm = DomainMap::new();
        dm.ex("Neuron", "has", "Compartment");
        let n = dm.lookup("Neuron").unwrap();
        let e: Vec<_> = dm.out_edges(n).collect();
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].kind, EdgeKind::Ex("has".into()));
        assert_eq!(dm.roles(), vec!["has"]);
    }

    #[test]
    fn and_or_nodes_are_anonymous() {
        let mut dm = DomainMap::new();
        let a = dm.concept("A");
        let b = dm.concept("B");
        let and = dm.and_node(&[a, b]);
        assert!(dm.name(and).is_none());
        assert_eq!(dm.out_edges(and).count(), 2);
        let or = dm.or_node(&[a, b]);
        assert_ne!(and, or);
    }

    #[test]
    fn in_edges_track_reverse() {
        let mut dm = DomainMap::new();
        dm.isa("A", "C");
        dm.isa("B", "C");
        let c = dm.lookup("C").unwrap();
        assert_eq!(dm.in_edges(c).count(), 2);
    }
}
