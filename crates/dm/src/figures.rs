//! The paper's concrete domain maps — Figure 1 and Figure 3 — plus a
//! parameterized anatomy generator for scaling experiments.
//!
//! The paper's ANATOM source is a large curated neuroanatomy ontology we
//! do not have; [`anatomy_generated`] grows anatomically-shaped maps
//! (partonomy trees with specialization layers) of configurable size as a
//! stand-in (see DESIGN.md, "Substitutions").

use crate::axiom::load_axioms;
use crate::graph::DomainMap;

/// The DL axioms of Example 1, exactly as listed in §1 of the paper.
pub const FIGURE1_AXIOMS: &str = "
    % Domain map for SYNAPSE and NCMIR (Figure 1)
    Neuron < exists has.Compartment.
    Axon, Dendrite, Soma < Compartment.
    Spiny_Neuron = Neuron and exists has.Spine.
    Purkinje_Cell, Pyramidal_Cell < Spiny_Neuron.
    Dendrite < exists has.Branch.
    Shaft < Branch and exists has.Spine.
    Spine < exists contains.Ion_Binding_Protein.
    Spine < Ion_Regulating_Component.
    Ion_Activity < exists subprocess_of.Neurotransmission.
    Ion_Binding_Protein < Protein and exists controls.Ion_Activity.
    Ion_Regulating_Component = exists regulates.Ion_Activity.
";

/// The base domain map of Figure 3 (light nodes), before `MyNeuron` /
/// `MyDendrite` are registered.
pub const FIGURE3_BASE_AXIOMS: &str = "
    Neostriatum < exists has.Medium_Spiny_Neuron.
    Medium_Spiny_Neuron < Spiny_Neuron.
    Spiny_Neuron < Neuron.
    Neuron < exists has.Compartment.
    Soma, Axon, Dendrite < Compartment.
    GABA, Substance_P, Dopamine_R < Neurotransmitter.
    Medium_Spiny_Neuron < exists exp.(GABA or Substance_P or Dopamine_R).
    Medium_Spiny_Neuron <
        exists proj.(Substantia_nigra_pr or Substantia_nigra_pc or
                     Globus_Pallidus_External or Globus_Pallidus_Internal).
";

/// The knowledge a source sends to register `MyNeuron` and `MyDendrite`
/// (Figure 3, dark nodes):
///
/// > `MyDendrite ≡ Dendrite ⊓ ∃exp.Dopamine_R` —
/// > `MyNeuron ⊑ Medium_Spiny_Neuron ⊓ ∃proj.Globus_pallidus_external ⊓
/// >  ∀has.MyDendrite`
pub const FIGURE3_REGISTRATION_AXIOMS: &str = "
    MyDendrite = Dendrite and exists exp.Dopamine_R.
    MyNeuron < Medium_Spiny_Neuron
               and exists proj.Globus_Pallidus_External
               and all has.MyDendrite.
";

/// Builds the Figure 1 domain map.
pub fn figure1() -> DomainMap {
    let mut dm = DomainMap::new();
    load_axioms(&mut dm, FIGURE1_AXIOMS).expect("figure 1 axioms are well-formed");
    dm
}

/// Builds the Figure 3 base map (before registration).
pub fn figure3_base() -> DomainMap {
    let mut dm = DomainMap::new();
    load_axioms(&mut dm, FIGURE3_BASE_AXIOMS).expect("figure 3 axioms are well-formed");
    dm
}

/// Builds the full Figure 3 map (after registering the new knowledge).
pub fn figure3() -> DomainMap {
    let mut dm = figure3_base();
    load_axioms(&mut dm, FIGURE3_REGISTRATION_AXIOMS)
        .expect("figure 3 registration axioms are well-formed");
    dm
}

/// A deterministic, anatomically-shaped domain map: a `has_a` partonomy
/// tree of the given `depth` and `fanout` rooted at `Nervous_System`,
/// where every region also has `specializations` isa-children (so the
/// deductive closure `dc(has_a)` has real work to do).
///
/// Node counts: `(fanout^(depth+1) - 1) / (fanout - 1)` regions, each
/// with `specializations` extra concepts.
pub fn anatomy_generated(depth: usize, fanout: usize, specializations: usize) -> DomainMap {
    let mut dm = DomainMap::new();
    dm.concept("Nervous_System");
    dm.isa("Nervous_System", "Anatomical_Entity");
    let mut frontier = vec!["Nervous_System".to_string()];
    for level in 0..depth {
        let mut next = Vec::new();
        for parent in &frontier {
            for k in 0..fanout {
                let child = format!("{parent}_r{level}{k}");
                dm.ex(parent, "has_a", &child);
                dm.isa(&child, "Anatomical_Entity");
                for s in 0..specializations {
                    let spec = format!("{child}_s{s}");
                    dm.isa(&spec, &child);
                }
                next.push(child);
            }
        }
        frontier = next;
    }
    dm
}

/// The leaf regions of a generated anatomy (useful for anchoring data).
pub fn anatomy_leaves(depth: usize, fanout: usize) -> Vec<String> {
    let mut frontier = vec!["Nervous_System".to_string()];
    for level in 0..depth {
        let mut next = Vec::new();
        for parent in &frontier {
            for k in 0..fanout {
                next.push(format!("{parent}_r{level}{k}"));
            }
        }
        frontier = next;
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeKind, NodeKind};
    use crate::ops::Resolved;

    #[test]
    fn figure1_has_all_named_concepts() {
        let dm = figure1();
        for name in [
            "Neuron",
            "Compartment",
            "Axon",
            "Dendrite",
            "Soma",
            "Spiny_Neuron",
            "Purkinje_Cell",
            "Pyramidal_Cell",
            "Spine",
            "Branch",
            "Shaft",
            "Ion_Binding_Protein",
            "Ion_Regulating_Component",
            "Ion_Activity",
            "Neurotransmission",
            "Protein",
        ] {
            assert!(dm.lookup(name).is_some(), "missing concept {name}");
        }
    }

    #[test]
    fn figure1_roles_match_the_figure() {
        let dm = figure1();
        let mut roles = dm.roles();
        roles.sort_unstable();
        assert_eq!(
            roles,
            vec!["contains", "controls", "has", "regulates", "subprocess_of"]
        );
    }

    #[test]
    fn figure1_knowledge_chain_connects_the_two_worlds() {
        // The paper's point: SYNAPSE (spine morphology) and NCMIR
        // (protein localization) connect through the domain map. Check
        // the chain: Purkinje_Cell ⊑ Spiny_Neuron (≡ Neuron ⊓ ∃has.Spine),
        // Spine contains Ion_Binding_Protein ⊑ Protein.
        let dm = figure1();
        let r = Resolved::new(&dm);
        let pc = dm.lookup("Purkinje_Cell").unwrap();
        let neuron = dm.lookup("Neuron").unwrap();
        assert!(r.is_subconcept(pc, neuron));
        let spine = dm.lookup("Spine").unwrap();
        let ibp = dm.lookup("Ion_Binding_Protein").unwrap();
        assert!(r.role_pairs("contains").contains(&(spine, ibp)));
        let protein = dm.lookup("Protein").unwrap();
        assert!(r.is_subconcept(ibp, protein));
        // Purkinje cells inherit the spine link from Spiny_Neuron:
        assert!(r.dc_pairs("has").contains(&(pc, spine)));
    }

    #[test]
    fn figure3_or_nodes_for_projection_targets() {
        let dm = figure3_base();
        let msn = dm.lookup("Medium_Spiny_Neuron").unwrap();
        let proj_targets: Vec<_> = dm
            .out_edges(msn)
            .filter(|e| matches!(&e.kind, EdgeKind::Ex(r) if r == "proj"))
            .collect();
        assert_eq!(proj_targets.len(), 1);
        assert!(matches!(dm.node_kind(proj_targets[0].to), NodeKind::Or));
        assert_eq!(dm.out_edges(proj_targets[0].to).count(), 4);
    }

    #[test]
    fn figure3_registration_adds_dark_nodes() {
        let base = figure3_base();
        let full = figure3();
        assert!(base.lookup("MyNeuron").is_none());
        assert!(full.lookup("MyNeuron").is_some());
        assert!(full.lookup("MyDendrite").is_some());
        // "MyNeuron, like any Medium_Spiny_Neuron, projects to certain
        // structures … it follows that MyNeuron definitely projects to
        // Globus Pallidus External":
        let r = Resolved::new(&full);
        let mn = full.lookup("MyNeuron").unwrap();
        let gpe = full.lookup("Globus_Pallidus_External").unwrap();
        assert!(r.dc_pairs("proj").contains(&(mn, gpe)));
        // MyDendrite is recognized as a Dendrite.
        let md = full.lookup("MyDendrite").unwrap();
        let d = full.lookup("Dendrite").unwrap();
        assert!(r.is_subconcept(md, d));
    }

    #[test]
    fn registration_does_not_touch_base_concepts() {
        // §4: a source can anchor data "without changing the latter" and
        // refinements only add; existing nodes/edges stay.
        let base = figure3_base();
        let full = figure3();
        for (_, name) in base.concepts() {
            assert!(full.lookup(name).is_some());
        }
        assert!(full.node_count() > base.node_count());
        assert!(full.edge_count() > base.edge_count());
    }

    #[test]
    fn generated_anatomy_sizes() {
        let dm = anatomy_generated(2, 3, 1);
        // regions: 1 + 3 + 9 = 13, each non-root with 1 specialization
        // (12), plus Anatomical_Entity: 13 + 12 + 1 = 26.
        assert_eq!(dm.concepts().count(), 26);
        let leaves = anatomy_leaves(2, 3);
        assert_eq!(leaves.len(), 9);
        assert!(dm.lookup(&leaves[0]).is_some());
    }

    #[test]
    fn generated_anatomy_is_deterministic() {
        let a = anatomy_generated(3, 2, 2);
        let b = anatomy_generated(3, 2, 2);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
    }
}
