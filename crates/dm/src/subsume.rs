//! Structural subsumption on a restricted, decidable fragment.
//!
//! Proposition 1: *"Subsumption and satisfiability are undecidable for
//! unrestricted GCM domain maps"* — because the GCM's rule extension
//! reaches full FO(LFP). The paper's answer is pragmatic: "in a typical
//! mediator system, reasoning about the DM may be required only to a
//! limited extent … restricted and decidable fragments like the ANATOM
//! domain map are often sufficient" (§6).
//!
//! This module implements that restricted fragment: structural
//! subsumption over the DL edge language of Definition 1 *without* the
//! rule extension. Definitions (`≡` axioms) are unfolded to a bounded
//! depth (cyclic definitions are truncated rather than looped on), told
//! subsumers (`⊑` axioms) are closed transitively, and the check is
//! **sound but incomplete**: `subsumes` returning `true` is always a real
//! entailment; `false` may be a "don't know".

use crate::axiom::{Axiom, AxiomOp, ConceptExpr};
use std::collections::{HashMap, HashSet};

/// Maximum definition-unfolding depth (bounds cyclic TBoxes).
const MAX_UNFOLD: usize = 16;

/// A structural-subsumption reasoner over a set of axioms.
#[derive(Debug, Clone, Default)]
pub struct Subsumption {
    /// A ≡ expr definitions.
    defs: HashMap<String, ConceptExpr>,
    /// Told subsumptions A ⊑ expr (conjunct lists per name).
    told: HashMap<String, Vec<ConceptExpr>>,
}

/// The normal form of a concept: atoms plus quantified successors.
#[derive(Debug, Clone, Default)]
struct Norm {
    atoms: HashSet<String>,
    exists: Vec<(String, Norm)>,
    forall: Vec<(String, Norm)>,
    /// Disjunction alternatives (non-empty only when the concept is a
    /// top-level OR; each alternative is itself a Norm).
    alts: Vec<Norm>,
}

impl Subsumption {
    /// Builds the reasoner from axioms.
    pub fn new(axioms: &[Axiom]) -> Self {
        let mut s = Subsumption::default();
        for ax in axioms {
            for subject in &ax.subjects {
                match ax.op {
                    AxiomOp::Eqv => {
                        s.defs.insert(subject.clone(), ax.rhs.clone());
                    }
                    AxiomOp::Sub => {
                        s.told
                            .entry(subject.clone())
                            .or_default()
                            .push(ax.rhs.clone());
                    }
                }
            }
        }
        s
    }

    /// Normalizes an expression, unfolding definitions and told
    /// subsumers up to the depth bound. A *defined* name (`≡` axiom) is
    /// replaced by its definition; a *primitive* name stays as an atom
    /// (plus its told subsumers). Names already being expanded (cycles)
    /// stay opaque atoms.
    fn norm(&self, expr: &ConceptExpr, depth: usize, seen: &mut HashSet<String>) -> Norm {
        let mut n = Norm::default();
        self.norm_into(expr, depth, seen, &mut n);
        n
    }

    fn norm_into(
        &self,
        expr: &ConceptExpr,
        depth: usize,
        seen: &mut HashSet<String>,
        out: &mut Norm,
    ) {
        match expr {
            ConceptExpr::Atomic(a) => {
                if depth == 0 || seen.contains(a) {
                    out.atoms.insert(a.clone());
                    return;
                }
                seen.insert(a.clone());
                match self.defs.get(a) {
                    Some(def) => self.norm_into(&def.clone(), depth - 1, seen, out),
                    None => {
                        out.atoms.insert(a.clone());
                    }
                }
                if let Some(supers) = self.told.get(a) {
                    for sup in supers.clone() {
                        self.norm_into(&sup, depth - 1, seen, out);
                    }
                }
                seen.remove(a);
            }
            ConceptExpr::And(ms) => {
                for m in ms {
                    self.norm_into(m, depth, seen, out);
                }
            }
            ConceptExpr::Or(ms) => {
                for m in ms {
                    let alt = self.norm(m, depth, seen);
                    out.alts.push(alt);
                }
            }
            ConceptExpr::Exists(r, inner) => {
                let n = self.norm(inner, depth, seen);
                out.exists.push((r.clone(), n));
            }
            ConceptExpr::Forall(r, inner) => {
                let n = self.norm(inner, depth, seen);
                out.forall.push((r.clone(), n));
            }
        }
    }

    /// Whether `sup` subsumes `sub` (`sub ⊑ sup`) in the restricted
    /// fragment. Sound; incomplete (see module docs).
    pub fn subsumes(&self, sup: &ConceptExpr, sub: &ConceptExpr) -> bool {
        let sup_n = self.norm(sup, MAX_UNFOLD, &mut HashSet::new());
        let sub_n = self.norm(sub, MAX_UNFOLD, &mut HashSet::new());
        norm_subsumes(&sup_n, &sub_n)
    }

    /// Whether two expressions are equivalent in the fragment.
    pub fn equivalent(&self, a: &ConceptExpr, b: &ConceptExpr) -> bool {
        self.subsumes(a, b) && self.subsumes(b, a)
    }

    /// Classifies the named concepts: all pairs `(sub, sup)` with
    /// `sub ⊑ sup`, `sub ≠ sup`.
    pub fn classify(&self, names: &[&str]) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for &a in names {
            for &b in names {
                if a != b {
                    let ea = ConceptExpr::Atomic(a.to_string());
                    let eb = ConceptExpr::Atomic(b.to_string());
                    if self.subsumes(&eb, &ea) {
                        out.push((a.to_string(), b.to_string()));
                    }
                }
            }
        }
        out
    }
}

/// Structural check: every requirement of `sup` is met by `sub`.
fn norm_subsumes(sup: &Norm, sub: &Norm) -> bool {
    // If sub is a disjunction, every alternative must be subsumed.
    if !sub.alts.is_empty() {
        let core_ok = sub.alts.iter().all(|alt| {
            let mut merged = alt.clone();
            merged.atoms.extend(sub.atoms.iter().cloned());
            merged.exists.extend(sub.exists.iter().cloned());
            merged.forall.extend(sub.forall.iter().cloned());
            merged.alts.clear();
            norm_subsumes(sup, &merged)
        });
        return core_ok;
    }
    // If sup is a disjunction, some alternative must subsume sub.
    if !sup.alts.is_empty() {
        let plain = Norm {
            atoms: sup.atoms.clone(),
            exists: sup.exists.clone(),
            forall: sup.forall.clone(),
            alts: Vec::new(),
        };
        return norm_subsumes(&plain, sub) && sup.alts.iter().any(|alt| norm_subsumes(alt, sub));
    }
    sup.atoms.is_subset(&sub.atoms)
        && sup.exists.iter().all(|(r, d)| {
            sub.exists
                .iter()
                .any(|(r2, c)| r == r2 && norm_subsumes(d, c))
        })
        && sup.forall.iter().all(|(r, d)| {
            sub.forall
                .iter()
                .any(|(r2, c)| r == r2 && norm_subsumes(d, c))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axiom::parse_axioms;

    fn reasoner(src: &str) -> Subsumption {
        Subsumption::new(&parse_axioms(src).unwrap())
    }

    fn atom(n: &str) -> ConceptExpr {
        ConceptExpr::Atomic(n.to_string())
    }

    #[test]
    fn told_subsumption_is_transitive() {
        let s = reasoner(
            "Purkinje_Cell < Spiny_Neuron.
             Spiny_Neuron < Neuron.
             Neuron < Cell.",
        );
        assert!(s.subsumes(&atom("Cell"), &atom("Purkinje_Cell")));
        assert!(!s.subsumes(&atom("Purkinje_Cell"), &atom("Cell")));
    }

    #[test]
    fn definitions_unfold() {
        let s = reasoner("Spiny_Neuron = Neuron and exists has.Spine.");
        // Anything that is a Neuron with a spine is a Spiny_Neuron:
        let candidate = parse_axioms("X = Neuron and exists has.Spine.").unwrap()[0]
            .rhs
            .clone();
        assert!(s.subsumes(&atom("Spiny_Neuron"), &candidate));
        assert!(s.subsumes(&candidate, &atom("Spiny_Neuron")));
        assert!(s.equivalent(&atom("Spiny_Neuron"), &candidate));
        // But a bare Neuron is not known to be spiny:
        assert!(!s.subsumes(&atom("Spiny_Neuron"), &atom("Neuron")));
        assert!(s.subsumes(&atom("Neuron"), &atom("Spiny_Neuron")));
    }

    #[test]
    fn exists_successors_compared_recursively() {
        let s = reasoner("Purkinje_Cell < Neuron. ");
        let has_purkinje = ConceptExpr::Exists("touches".into(), Box::new(atom("Purkinje_Cell")));
        let has_neuron = ConceptExpr::Exists("touches".into(), Box::new(atom("Neuron")));
        // ∃touches.Purkinje_Cell ⊑ ∃touches.Neuron.
        assert!(s.subsumes(&has_neuron, &has_purkinje));
        assert!(!s.subsumes(&has_purkinje, &has_neuron));
    }

    #[test]
    fn myneuron_example_from_figure3() {
        let s = reasoner(
            "MyDendrite = Dendrite and exists exp.Dopamine_R.
             MyNeuron < Medium_Spiny_Neuron and exists proj.GPE and all has.MyDendrite.
             Medium_Spiny_Neuron < Spiny_Neuron.
             Spiny_Neuron < Neuron.",
        );
        assert!(s.subsumes(&atom("Neuron"), &atom("MyNeuron")));
        assert!(s.subsumes(&atom("Dendrite"), &atom("MyDendrite")));
        let projs_gpe = ConceptExpr::Exists("proj".into(), Box::new(atom("GPE")));
        assert!(s.subsumes(&projs_gpe, &atom("MyNeuron")));
    }

    #[test]
    fn disjunction_soundness() {
        let s = reasoner("A < C. B < C.");
        let a_or_b = ConceptExpr::Or(vec![atom("A"), atom("B")]);
        // A ⊔ B ⊑ C since both disjuncts are.
        assert!(s.subsumes(&atom("C"), &a_or_b));
        // C ⊑ A ⊔ B does not follow.
        assert!(!s.subsumes(&a_or_b, &atom("C")));
        // A ⊑ A ⊔ B holds.
        assert!(s.subsumes(&a_or_b, &atom("A")));
    }

    #[test]
    fn cyclic_definitions_terminate() {
        // Branch ≡ ∃has.Spine-carrier, Spine-carrier ≡ ∃part_of.Branch —
        // unfolding must not loop.
        let s = reasoner(
            "Branch = exists has.Carrier.
             Carrier = exists part_of.Branch.",
        );
        assert!(s.subsumes(&atom("Branch"), &atom("Branch")));
        assert!(!s.subsumes(&atom("Branch"), &atom("Carrier")));
    }

    #[test]
    fn classify_produces_hierarchy_pairs() {
        let s = reasoner(
            "Purkinje_Cell < Spiny_Neuron.
             Spiny_Neuron < Neuron.",
        );
        let pairs = s.classify(&["Purkinje_Cell", "Spiny_Neuron", "Neuron"]);
        assert!(pairs.contains(&("Purkinje_Cell".into(), "Neuron".into())));
        assert!(pairs.contains(&("Spiny_Neuron".into(), "Neuron".into())));
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn forall_compared_covariantly() {
        let s = reasoner("MyDendrite < Dendrite.");
        let all_my = ConceptExpr::Forall("has".into(), Box::new(atom("MyDendrite")));
        let all_d = ConceptExpr::Forall("has".into(), Box::new(atom("Dendrite")));
        assert!(s.subsumes(&all_d, &all_my));
        assert!(!s.subsumes(&all_my, &all_d));
    }
}
