//! Executing a domain map: translating its edges into logic rules over
//! the mediator's object base (§4).
//!
//! Each DL edge axiom can be "executed" in one of two ways:
//!
//! * **integrity constraint** — `C —r→ D` demands the object base be
//!   *data-complete*: every `X : C` must have an r-filler in `D`,
//!   otherwise a witness `wex(C,r,D,X)` enters `ic`;
//! * **assertion** — the filler exists *in the real world*, so a virtual
//!   placeholder object `sk(C,r,D,X)` is created whenever the object base
//!   does not contain one (the paper's `f_{C,r,D}(x)`).
//!
//! Placeholders are derived into `relinst_sk` while guards negate only
//! the *asserted* `relinst`, keeping the program stratified; the combined
//! view `role_all` unions both. The map's concept level is exported as
//! `dm_isa`/`dm_role` facts, over which the closure operations of §4
//! (`tc`, `dc`, `has_a_star`) are installed as the paper writes them.

use crate::graph::{DomainMap, EdgeKind, NodeId, NodeKind};
use std::fmt::Write;

/// How edges of a domain map are executed (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Report data-incompleteness as `ic` witnesses.
    Constraint,
    /// Create skolem placeholder objects for missing fillers.
    Assertion,
}

/// The paper's closure rules (§4), over the reified concept-level export.
///
/// `tc_isa` is the transitive closure of the concept-level isa graph;
/// `dc(R)` propagates role links up and down the isa chains; and
/// `has_a_star` names `dc(has_a)` — "all inferable *direct* has_a links"
/// (deliberately *not* transitively closed; the paper calls materializing
/// `tc(has_a_star)` wasteful).
pub const DM_OPS_RULES: &str = r#"
% role_all: asserted plus placeholder role links (instance level)
role_all(R, X, Y) :- relinst(R, X, Y).
role_all(R, X, Y) :- relinst_sk(R, X, Y).

% --- concept-level closures (paper §4) ---------------------------------
tc_isa(X, Y) :- dm_isa(X, Y).
tc_isa(X, Y) :- tc_isa(X, Z), tc_isa(Z, Y).

dc(R, X, Y) :- dm_role(R, X, Y).
dc(R, X, Y) :- tc_isa(X, Z), dm_role(R, Z, Y).
dc(R, X, Y) :- dm_role(R, X, Z), tc_isa(Z, Y).
dc(R, X, Y) :- tc_isa(X, Z1), dm_role(R, Z1, Z2), tc_isa(Z2, Y).

has_a_star(X, Y) :- dc("has_a", X, Y).
"#;

/// Everything generated from a domain map for the deductive engine.
#[derive(Debug, Clone)]
pub struct DmProgram {
    /// Concept-level facts (`dm_isa`, `dm_role`) plus instance-level
    /// rules for every edge, as Datalog/FL-compatible text.
    pub text: String,
    /// How many edges were compiled.
    pub edges_compiled: usize,
}

fn q(s: &str) -> String {
    format!("{s:?}")
}

/// Compiles a domain map into rule text for a `kind_flogic::FLogic` (or
/// plain `kind_datalog::Engine`) knowledge base. Callers should also load
/// [`DM_OPS_RULES`] once per engine.
pub fn compile(dm: &DomainMap, mode: ExecMode) -> DmProgram {
    let mut text = String::new();
    let mut compiled = 0usize;
    // Concept-level export (via the resolved view so AND inlining matches
    // the pure-graph operations).
    let resolved = crate::ops::Resolved::new(dm);
    for (c, name) in dm.concepts() {
        let _ = writeln!(text, "dm_concept({}).", q(name));
        for &p in resolved.parents(c) {
            if let Some(pn) = dm.name(p) {
                let _ = writeln!(text, "dm_isa({}, {}).", q(name), q(pn));
            }
        }
    }
    for role in resolved_roles(&resolved) {
        for &(x, y) in resolved.role_pairs(&role) {
            if let (Some(xn), Some(yn)) = (dm.name(x), dm.name(y)) {
                let _ = writeln!(text, "dm_role({}, {}, {}).", q(&role), q(xn), q(yn));
            }
        }
    }
    // Instance-level rules per edge. Auxiliary predicates get fresh
    // ids from a counter (edge indices would collide for the several
    // role edges inlined from one AND node).
    let mut aux = 0usize;
    for edge in dm.edges() {
        if compile_edge(dm, edge, mode, &mut aux, &mut text) {
            compiled += 1;
        }
    }
    DmProgram {
        text,
        edges_compiled: compiled,
    }
}

fn resolved_roles(r: &crate::ops::Resolved) -> Vec<String> {
    let mut v = r.role_names();
    v.sort();
    v
}

/// Emits a membership predicate `t_<i>(Y)` for the target node of edge
/// `i`, true when `Y` belongs to the node's concept (atomic), to all AND
/// members, or to some OR member. Returns `false` when no membership test
/// is expressible (e.g. an OR with anonymous members).
fn emit_target_pred(dm: &DomainMap, i: usize, node: NodeId, text: &mut String) -> bool {
    let pred = format!("dm_t_{i}");
    match dm.node_kind(node) {
        NodeKind::Concept(n) => {
            let _ = writeln!(text, "{pred}(Y) :- Y : {}.", q(n));
            true
        }
        NodeKind::And => {
            let mut conj: Vec<String> = Vec::new();
            for e in dm.out_edges(node) {
                match (&e.kind, dm.node_kind(e.to)) {
                    (EdgeKind::Member, NodeKind::Concept(n)) => {
                        conj.push(format!("Y : {}", q(n)));
                    }
                    (EdgeKind::Ex(r), NodeKind::Concept(n)) => {
                        conj.push(format!(
                            "role_all({}, Y, Z{}), Z{} : {}",
                            q(r),
                            conj.len(),
                            conj.len(),
                            q(n)
                        ));
                    }
                    _ => return false,
                }
            }
            if conj.is_empty() {
                return false;
            }
            let _ = writeln!(text, "{pred}(Y) :- {}.", conj.join(", "));
            true
        }
        NodeKind::Or => {
            let mut any = false;
            for e in dm.out_edges(node) {
                if let (EdgeKind::Member, NodeKind::Concept(n)) = (&e.kind, dm.node_kind(e.to)) {
                    let _ = writeln!(text, "{pred}(Y) :- Y : {}.", q(n));
                    any = true;
                }
            }
            any
        }
    }
}

/// Emits skolem typing facts for the placeholder of edge `i`: the classes
/// a freshly created filler is known to belong to.
fn skolem_classes(dm: &DomainMap, node: NodeId) -> Vec<String> {
    match dm.node_kind(node) {
        NodeKind::Concept(n) => vec![n.clone()],
        NodeKind::And => dm
            .out_edges(node)
            .filter_map(|e| match (&e.kind, dm.node_kind(e.to)) {
                (EdgeKind::Member, NodeKind::Concept(n)) => Some(n.clone()),
                _ => None,
            })
            .collect(),
        // A disjunctive target gives the placeholder no definite class.
        NodeKind::Or => Vec::new(),
    }
}

fn target_label(dm: &DomainMap, node: NodeId) -> String {
    dm.name(node)
        .map(str::to_owned)
        .unwrap_or_else(|| format!("anon_{}", node.0))
}

fn compile_edge(
    dm: &DomainMap,
    edge: &crate::graph::Edge,
    mode: ExecMode,
    aux: &mut usize,
    text: &mut String,
) -> bool {
    let fresh = |aux: &mut usize| {
        let i = *aux;
        *aux += 1;
        i
    };
    let _ = &fresh;
    // Only edges whose source is a named concept generate instance rules;
    // AND/OR interior edges are handled where the anonymous node is used.
    let Some(cname) = dm.name(edge.from) else {
        return false;
    };
    let c = q(cname);
    match &edge.kind {
        EdgeKind::Isa | EdgeKind::Eqv => {
            match dm.node_kind(edge.to) {
                NodeKind::Concept(d) => {
                    let _ = writeln!(text, "X : {} :- X : {c}.", q(d));
                    if edge.kind == EdgeKind::Eqv {
                        let _ = writeln!(text, "X : {c} :- X : {}.", q(d));
                    }
                    true
                }
                NodeKind::And => {
                    // Forward: X:C gains each conjunct (atomic members and
                    // role edges of the AND node, treated as C's own).
                    for e in dm.out_edges(edge.to).collect::<Vec<_>>() {
                        match (&e.kind, dm.node_kind(e.to)) {
                            (EdgeKind::Member, NodeKind::Concept(d)) => {
                                let _ = writeln!(text, "X : {} :- X : {c}.", q(d));
                            }
                            (EdgeKind::Ex(r), _) => {
                                compile_ex(dm, fresh(aux), &c, r, e.to, mode, text);
                            }
                            (EdgeKind::All(r), _) => {
                                compile_all(dm, fresh(aux), &c, r, e.to, mode, text);
                            }
                            _ => {}
                        }
                    }
                    // Backward (recognition) for eqv: membership in every
                    // conjunct implies C.
                    if edge.kind == EdgeKind::Eqv {
                        let i = fresh(aux);
                        let pred = format!("dm_t_{i}");
                        if emit_target_pred(dm, i, edge.to, text) {
                            let _ = writeln!(text, "Y : {c} :- {pred}(Y).");
                        }
                    }
                    true
                }
                NodeKind::Or => {
                    // X:C is in some member — no definite forward rule.
                    // Backward for eqv: each member implies C.
                    if edge.kind == EdgeKind::Eqv {
                        for e in dm.out_edges(edge.to) {
                            if let (EdgeKind::Member, NodeKind::Concept(d)) =
                                (&e.kind, dm.node_kind(e.to))
                            {
                                let _ = writeln!(text, "X : {c} :- X : {}.", q(d));
                            }
                        }
                    }
                    // Constraint mode: X must belong to some member.
                    if mode == ExecMode::Constraint {
                        let i = fresh(aux);
                        let pred = format!("dm_t_{i}");
                        if emit_target_pred(dm, i, edge.to, text) {
                            let _ = writeln!(text, "wor({c}, X) : ic :- X : {c}, not {pred}(X).");
                        }
                    }
                    true
                }
            }
        }
        EdgeKind::Ex(r) => {
            compile_ex(dm, fresh(aux), &c, r, edge.to, mode, text);
            true
        }
        EdgeKind::All(r) => {
            compile_all(dm, fresh(aux), &c, r, edge.to, mode, text);
            true
        }
        EdgeKind::Member => false,
    }
}

/// `C ⊑ ∃r.D` at the instance level.
fn compile_ex(
    dm: &DomainMap,
    i: usize,
    c: &str,
    role: &str,
    target: NodeId,
    mode: ExecMode,
    text: &mut String,
) {
    let r = q(role);
    let has_target_pred = emit_target_pred(dm, i, target, text);
    let tpred = format!("dm_t_{i}");
    let filler = format!("dm_filler_{i}");
    match mode {
        ExecMode::Constraint => {
            if !has_target_pred {
                return;
            }
            let _ = writeln!(text, "{filler}(X) :- role_all({r}, X, Y), {tpred}(Y).");
            let _ = writeln!(
                text,
                "wex({c}, {r}, {}, X) : ic :- X : {c}, not {filler}(X).",
                q(&target_label(dm, target))
            );
        }
        ExecMode::Assertion => {
            // Guard on *asserted* links only, so the skolem rules stay
            // stratified (see module docs).
            if has_target_pred {
                let _ = writeln!(text, "{filler}(X) :- relinst({r}, X, Y), {tpred}(Y).");
            } else {
                let _ = writeln!(text, "{filler}(X) :- relinst({r}, X, _).");
            }
            let d = q(&target_label(dm, target));
            let _ = writeln!(
                text,
                "relinst_sk({r}, X, sk({c}, {r}, {d}, X)) :- X : {c}, not {filler}(X)."
            );
            for class in skolem_classes(dm, target) {
                let _ = writeln!(
                    text,
                    "sk({c}, {r}, {d}, X) : {} :- X : {c}, not {filler}(X).",
                    q(&class)
                );
            }
        }
    }
}

/// `C ⊑ ∀r.D` at the instance level.
fn compile_all(
    dm: &DomainMap,
    i: usize,
    c: &str,
    role: &str,
    target: NodeId,
    mode: ExecMode,
    text: &mut String,
) {
    let r = q(role);
    match (mode, dm.node_kind(target)) {
        (ExecMode::Assertion, NodeKind::Concept(d)) => {
            // Type propagation: every filler is a D.
            let _ = writeln!(text, "Y : {} :- X : {c}, role_all({r}, X, Y).", q(d));
        }
        (ExecMode::Assertion, _) => {
            // Anonymous target: propagate each recognizable class.
            for class in skolem_classes(dm, target) {
                let _ = writeln!(text, "Y : {} :- X : {c}, role_all({r}, X, Y).", q(&class));
            }
        }
        (ExecMode::Constraint, _) => {
            if emit_target_pred(dm, i, target, text) {
                let tpred = format!("dm_t_{i}");
                let _ = writeln!(
                    text,
                    "wall({c}, {r}, Y) : ic :- X : {c}, role_all({r}, X, Y), not {tpred}(Y)."
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axiom::load_axioms;
    use kind_flogic::FLogic;

    fn engine_with(dm: &DomainMap, mode: ExecMode, data: &str) -> FLogic {
        let mut fl = FLogic::new();
        fl.load_datalog(DM_OPS_RULES).unwrap();
        let prog = compile(dm, mode);
        fl.load(&prog.text).unwrap();
        fl.load(data).unwrap();
        fl
    }

    #[test]
    fn isa_edges_propagate_instances() {
        let mut dm = DomainMap::new();
        load_axioms(
            &mut dm,
            "Purkinje_Cell < Spiny_Neuron. Spiny_Neuron < Neuron.",
        )
        .unwrap();
        let fl = engine_with(&dm, ExecMode::Assertion, r#"p1 : "Purkinje_Cell"."#);
        let m = fl.run().unwrap();
        assert!(fl.is_instance(&m, "p1", "Neuron"));
    }

    #[test]
    fn constraint_mode_reports_missing_fillers() {
        let mut dm = DomainMap::new();
        load_axioms(&mut dm, "Neuron < exists has.Compartment.").unwrap();
        let fl = engine_with(
            &dm,
            ExecMode::Constraint,
            r#"n1 : "Neuron". n2 : "Neuron".
               c1 : "Compartment".
               relinst("has", n1, c1)."#,
        );
        let m = fl.run().unwrap();
        let ws = fl.inconsistency_witnesses(&m);
        assert_eq!(ws.len(), 1);
        assert!(ws[0].contains("n2"), "{ws:?}");
    }

    #[test]
    fn assertion_mode_creates_placeholders() {
        let mut dm = DomainMap::new();
        load_axioms(&mut dm, "Neuron < exists has.Compartment.").unwrap();
        let fl = engine_with(
            &dm,
            ExecMode::Assertion,
            r#"n1 : "Neuron". n2 : "Neuron".
               c1 : "Compartment".
               relinst("has", n1, c1)."#,
        );
        let m = fl.run().unwrap();
        assert!(fl.inconsistency_witnesses(&m).is_empty());
        // n2 got a placeholder filler, typed Compartment.
        let mut e = fl.engine().clone();
        let sk = e.query_model(&m, "relinst_sk(R, n2, Y)").unwrap();
        assert_eq!(sk.len(), 1);
        let comps = fl.instances_of(&m, "Compartment");
        assert!(comps.iter().any(|c| c.starts_with("sk(")), "{comps:?}");
        // n1 has an asserted filler: no placeholder.
        assert!(e
            .query_model(&m, "relinst_sk(R, n1, Y)")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn forall_edge_types_fillers() {
        let mut dm = DomainMap::new();
        load_axioms(&mut dm, "MyNeuron < all has.MyDendrite.").unwrap();
        let fl = engine_with(
            &dm,
            ExecMode::Assertion,
            r#"m1 : "MyNeuron". d1 : x.
               relinst("has", m1, d1)."#,
        );
        let m = fl.run().unwrap();
        assert!(fl.is_instance(&m, "d1", "MyDendrite"));
    }

    #[test]
    fn forall_constraint_reports_foreign_fillers() {
        let mut dm = DomainMap::new();
        load_axioms(&mut dm, "MyNeuron < all has.MyDendrite.").unwrap();
        let fl = engine_with(
            &dm,
            ExecMode::Constraint,
            r#"m1 : "MyNeuron". d1 : other.
               relinst("has", m1, d1)."#,
        );
        let m = fl.run().unwrap();
        let ws = fl.inconsistency_witnesses(&m);
        assert_eq!(ws.len(), 1);
        assert!(ws[0].starts_with("wall("), "{ws:?}");
    }

    #[test]
    fn eqv_recognition_rule() {
        let mut dm = DomainMap::new();
        load_axioms(&mut dm, "Spiny_Neuron = Neuron and exists has.Spine.").unwrap();
        let fl = engine_with(
            &dm,
            ExecMode::Assertion,
            r#"n1 : "Neuron". s1 : "Spine".
               relinst("has", n1, s1).
               n2 : "Neuron"."#,
        );
        let m = fl.run().unwrap();
        // n1 has a spine: recognized as Spiny_Neuron. n2 not.
        assert!(fl.is_instance(&m, "n1", "Spiny_Neuron"));
        assert!(!fl.is_instance(&m, "n2", "Spiny_Neuron"));
        // Forward: a declared Spiny_Neuron is a Neuron and gets a spine
        // placeholder.
        let fl2 = engine_with(&dm, ExecMode::Assertion, r#"z : "Spiny_Neuron"."#);
        let m2 = fl2.run().unwrap();
        assert!(fl2.is_instance(&m2, "z", "Neuron"));
        let spines = fl2.instances_of(&m2, "Spine");
        assert_eq!(spines.len(), 1);
        assert!(spines[0].starts_with("sk("));
    }

    #[test]
    fn or_membership_constraint() {
        let mut dm = DomainMap::new();
        load_axioms(&mut dm, "Compartment < Axon or Dendrite or Soma.").unwrap();
        let fl = engine_with(
            &dm,
            ExecMode::Constraint,
            r#"c1 : "Compartment". c1 : "Axon".
               c2 : "Compartment"."#,
        );
        let m = fl.run().unwrap();
        let ws = fl.inconsistency_witnesses(&m);
        assert_eq!(ws.len(), 1);
        assert!(ws[0].contains("c2"));
    }

    #[test]
    fn concept_level_export_feeds_closures() {
        let mut dm = DomainMap::new();
        load_axioms(
            &mut dm,
            "Dendrite < Compartment.
             Neuron < exists has_a.Compartment.
             Dendrite < exists has_a.Branch.",
        )
        .unwrap();
        let fl = engine_with(&dm, ExecMode::Assertion, "");
        let m = fl.run().unwrap();
        let mut e = fl.engine().clone();
        // dc propagates Neuron's has_a to... and dendrite link lifts: the
        // paper's has_a_star.
        let star = e.query_model(&m, "has_a_star(X, Y)").unwrap();
        assert!(star.contains(&vec![e.constant("Neuron"), e.constant("Compartment")]));
        // Dendrite (a Compartment) inherits nothing downward here, but
        // its own link is present:
        assert!(star.contains(&vec![e.constant("Dendrite"), e.constant("Branch")]));
    }

    #[test]
    fn placeholder_chains_are_depth_bounded() {
        // Branch has_a Spine; Spine has_a Branch — a cyclic partonomy
        // would generate unbounded skolem chains without the depth limit.
        let mut dm = DomainMap::new();
        load_axioms(
            &mut dm,
            "Branch < exists has.Spine. Spine < exists has.Branch.",
        )
        .unwrap();
        let fl = engine_with(&dm, ExecMode::Assertion, r#"b0 : "Branch"."#);
        let opts = kind_datalog::EvalOptions {
            max_term_depth: 5,
            ..Default::default()
        };
        let m = fl.run_with(&opts).unwrap();
        assert!(m.stats.depth_clipped > 0);
        let branches = fl.instances_of(&m, "Branch");
        assert!(branches.len() >= 2);
    }
}
