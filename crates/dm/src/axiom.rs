//! Description-logic axioms and their lowering onto the domain-map graph.
//!
//! The paper formalizes domain knowledge as DL statements like
//!
//! ```text
//! Neuron ⊑ ∃has.Compartment
//! Spiny_Neuron ≡ Neuron ⊓ ∃has.Spine
//! Purkinje_Cell, Pyramidal_Cell ⊑ Spiny_Neuron
//! MyNeuron ⊑ Medium_Spiny_Neuron ⊓ ∃proj.GPE ⊓ ∀has.MyDendrite
//! ```
//!
//! This module gives those statements a concrete text syntax —
//!
//! ```text
//! Neuron < exists has.Compartment.
//! Spiny_Neuron = Neuron and exists has.Spine.
//! Purkinje_Cell, Pyramidal_Cell < Spiny_Neuron.
//! MyNeuron < Medium_Spiny_Neuron and exists proj.GPE and all has.MyDendrite.
//! MSN < exists proj.(A or B or C).
//! ```
//!
//! — and lowers each axiom to edges per Definition 1. Per the paper,
//! "when unique, AND nodes are omitted and outgoing arcs directly attached
//! to the concept being defined": a `<` axiom attaches its top-level
//! conjuncts directly to the subject concept; nested expressions create
//! anonymous AND/OR nodes.

use crate::error::DmError;
use crate::graph::{DomainMap, EdgeKind, NodeId};
use std::fmt;

/// A DL concept expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConceptExpr {
    /// A named concept.
    Atomic(String),
    /// `C₁ ⊓ … ⊓ Cₙ`
    And(Vec<ConceptExpr>),
    /// `C₁ ⊔ … ⊔ Cₙ`
    Or(Vec<ConceptExpr>),
    /// `∃r.C`
    Exists(String, Box<ConceptExpr>),
    /// `∀r.C`
    Forall(String, Box<ConceptExpr>),
}

impl fmt::Display for ConceptExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConceptExpr::Atomic(n) => f.write_str(n),
            ConceptExpr::And(ms) => {
                let parts: Vec<String> = ms.iter().map(|m| m.to_string()).collect();
                write!(f, "({})", parts.join(" and "))
            }
            ConceptExpr::Or(ms) => {
                let parts: Vec<String> = ms.iter().map(|m| m.to_string()).collect();
                write!(f, "({})", parts.join(" or "))
            }
            ConceptExpr::Exists(r, c) => write!(f, "exists {r}.{c}"),
            ConceptExpr::Forall(r, c) => write!(f, "all {r}.{c}"),
        }
    }
}

/// The axiom operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxiomOp {
    /// `⊑` (written `<`).
    Sub,
    /// `≡` (written `=`).
    Eqv,
}

/// A DL axiom: one or more subject concepts related to an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Axiom {
    /// Subject concept names (the comma list on the left).
    pub subjects: Vec<String>,
    /// `⊑` or `≡`.
    pub op: AxiomOp,
    /// The right-hand expression.
    pub rhs: ConceptExpr,
}

impl fmt::Display for Axiom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            AxiomOp::Sub => "<",
            AxiomOp::Eqv => "=",
        };
        write!(f, "{} {op} {}.", self.subjects.join(", "), self.rhs)
    }
}

/// Parses a single concept expression (no trailing `.`), e.g.
/// `"Neuron and exists has.Spine"`.
pub fn parse_concept_expr(src: &str) -> Result<ConceptExpr, DmError> {
    let mut p = AxParser { src, pos: 0 };
    let e = p.or_expr()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after concept expression"));
    }
    Ok(e)
}

/// Parses a sequence of axioms (each terminated by `.`).
pub fn parse_axioms(src: &str) -> Result<Vec<Axiom>, DmError> {
    let mut p = AxParser { src, pos: 0 };
    let mut out = Vec::new();
    loop {
        p.skip_ws();
        if p.at_end() {
            return Ok(out);
        }
        out.push(p.axiom()?);
    }
}

struct AxParser<'a> {
    src: &'a str,
    pos: usize,
}

impl AxParser<'_> {
    fn err(&self, msg: &str) -> DmError {
        DmError::AxiomParse {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn rest(&self) -> &str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        loop {
            let r = self.rest();
            let trimmed = r.trim_start();
            self.pos += r.len() - trimmed.len();
            if self.rest().starts_with('%') || self.rest().starts_with("//") {
                match self.rest().find('\n') {
                    Some(i) => self.pos += i,
                    None => self.pos = self.src.len(),
                }
            } else {
                return;
            }
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn name(&mut self) -> Result<String, DmError> {
        self.skip_ws();
        let start = self.pos;
        let n: usize = self
            .rest()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .map(char::len_utf8)
            .sum();
        self.pos += n;
        if n == 0 {
            Err(self.err("expected name"))
        } else {
            Ok(self.src[start..self.pos].to_string())
        }
    }

    fn keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(kw) {
            let after = self.rest()[kw.len()..].chars().next();
            if !after.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn axiom(&mut self) -> Result<Axiom, DmError> {
        let mut subjects = vec![self.name()?];
        while self.eat(",") {
            subjects.push(self.name()?);
        }
        let op = if self.eat("<") {
            AxiomOp::Sub
        } else if self.eat("=") {
            AxiomOp::Eqv
        } else {
            return Err(self.err("expected `<` or `=`"));
        };
        let rhs = self.or_expr()?;
        if !self.eat(".") {
            return Err(self.err("expected `.`"));
        }
        Ok(Axiom { subjects, op, rhs })
    }

    fn or_expr(&mut self) -> Result<ConceptExpr, DmError> {
        let mut parts = vec![self.and_expr()?];
        while self.keyword("or") {
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            ConceptExpr::Or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<ConceptExpr, DmError> {
        let mut parts = vec![self.prim()?];
        while self.keyword("and") {
            parts.push(self.prim()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            ConceptExpr::And(parts)
        })
    }

    fn prim(&mut self) -> Result<ConceptExpr, DmError> {
        if self.eat("(") {
            let e = self.or_expr()?;
            if !self.eat(")") {
                return Err(self.err("expected `)`"));
            }
            return Ok(e);
        }
        if self.keyword("exists") {
            let role = self.name()?;
            if !self.eat(".") {
                return Err(self.err("expected `.` after role"));
            }
            return Ok(ConceptExpr::Exists(role, Box::new(self.prim()?)));
        }
        if self.keyword("all") {
            let role = self.name()?;
            if !self.eat(".") {
                return Err(self.err("expected `.` after role"));
            }
            return Ok(ConceptExpr::Forall(role, Box::new(self.prim()?)));
        }
        self.name().map(ConceptExpr::Atomic)
    }
}

/// Serializes a domain map back to DL axiom text — the inverse of
/// [`load_axioms`], used to ship a map (or "a source's local copy of the
/// DM", §4 footnote) over the wire. Anonymous AND/OR nodes are folded
/// back into expressions; reloading the output yields a map with the
/// same resolved semantics (see the round-trip test).
pub fn to_axioms(dm: &DomainMap) -> String {
    let mut out = String::new();
    for (c, name) in dm.concepts() {
        for edge in dm.out_edges(c) {
            let rhs = match &edge.kind {
                EdgeKind::Isa => node_expr(dm, edge.to),
                EdgeKind::Eqv => node_expr(dm, edge.to),
                EdgeKind::Ex(r) => {
                    node_expr(dm, edge.to).map(|e| ConceptExpr::Exists(r.clone(), Box::new(e)))
                }
                EdgeKind::All(r) => {
                    node_expr(dm, edge.to).map(|e| ConceptExpr::Forall(r.clone(), Box::new(e)))
                }
                EdgeKind::Member => None,
            };
            if let Some(rhs) = rhs {
                let op = if edge.kind == EdgeKind::Eqv { "=" } else { "<" };
                out.push_str(&format!("{name} {op} {rhs}.\n"));
            }
        }
        // A bare concept with no edges still needs to exist on reload
        // (a reflexive subsumption is a no-op under the FL axioms).
        if dm.out_edges(c).next().is_none() && dm.in_edges(c).next().is_none() {
            out.push_str(&format!("{name} < {name}.\n"));
        }
    }
    out
}

/// Reconstructs the expression a node denotes (named concepts directly;
/// AND/OR nodes from their outgoing edges). Returns `None` for nodes
/// whose shape cannot be expressed (should not occur for maps built by
/// this module).
fn node_expr(dm: &DomainMap, node: NodeId) -> Option<ConceptExpr> {
    use crate::graph::NodeKind;
    match dm.node_kind(node) {
        NodeKind::Concept(n) => Some(ConceptExpr::Atomic(n.clone())),
        NodeKind::And | NodeKind::Or => {
            let mut members = Vec::new();
            for e in dm.out_edges(node) {
                let m = match &e.kind {
                    EdgeKind::Member => node_expr(dm, e.to)?,
                    EdgeKind::Ex(r) => {
                        ConceptExpr::Exists(r.clone(), Box::new(node_expr(dm, e.to)?))
                    }
                    EdgeKind::All(r) => {
                        ConceptExpr::Forall(r.clone(), Box::new(node_expr(dm, e.to)?))
                    }
                    _ => return None,
                };
                members.push(m);
            }
            if members.is_empty() {
                return None;
            }
            Some(if members.len() == 1 {
                members.pop().expect("one member")
            } else if matches!(dm.node_kind(node), NodeKind::And) {
                ConceptExpr::And(members)
            } else {
                ConceptExpr::Or(members)
            })
        }
    }
}

/// Lowers an expression to a node (creating anonymous nodes as needed).
pub fn lower_expr(dm: &mut DomainMap, expr: &ConceptExpr) -> NodeId {
    match expr {
        ConceptExpr::Atomic(n) => dm.concept(n),
        ConceptExpr::And(ms) => {
            let node = dm.and_node(&[]);
            for m in ms {
                attach_member(dm, node, m);
            }
            node
        }
        ConceptExpr::Or(ms) => {
            let node = dm.or_node(&[]);
            for m in ms {
                attach_member(dm, node, m);
            }
            node
        }
        // A bare quantified expression gets a single-conjunct AND node so
        // it has a graph identity (e.g. `IRC = exists regulates.IA`).
        ConceptExpr::Exists(..) | ConceptExpr::Forall(..) => {
            let node = dm.and_node(&[]);
            attach_member(dm, node, expr);
            node
        }
    }
}

fn attach_member(dm: &mut DomainMap, node: NodeId, member: &ConceptExpr) {
    match member {
        ConceptExpr::Atomic(n) => {
            let m = dm.concept(n);
            dm.add_edge(node, m, EdgeKind::Member);
        }
        ConceptExpr::Exists(r, inner) => {
            let t = lower_expr(dm, inner);
            dm.add_edge(node, t, EdgeKind::Ex(r.clone()));
        }
        ConceptExpr::Forall(r, inner) => {
            let t = lower_expr(dm, inner);
            dm.add_edge(node, t, EdgeKind::All(r.clone()));
        }
        nested @ (ConceptExpr::And(_) | ConceptExpr::Or(_)) => {
            let t = lower_expr(dm, nested);
            dm.add_edge(node, t, EdgeKind::Member);
        }
    }
}

/// Applies an axiom to the graph. `<` attaches top-level conjuncts
/// directly to each subject (omitting the AND node, as in the figures);
/// `=` adds an `eqv` edge to the lowered right-hand side.
pub fn apply_axiom(dm: &mut DomainMap, ax: &Axiom) {
    for subject in &ax.subjects {
        let c = dm.concept(subject);
        match ax.op {
            AxiomOp::Sub => attach_sub(dm, c, &ax.rhs),
            AxiomOp::Eqv => {
                let n = lower_expr(dm, &ax.rhs);
                dm.add_edge(c, n, EdgeKind::Eqv);
            }
        }
    }
}

fn attach_sub(dm: &mut DomainMap, c: NodeId, expr: &ConceptExpr) {
    match expr {
        ConceptExpr::And(ms) => {
            for m in ms {
                attach_sub(dm, c, m);
            }
        }
        ConceptExpr::Atomic(n) => {
            let d = dm.concept(n);
            dm.add_edge(c, d, EdgeKind::Isa);
        }
        ConceptExpr::Exists(r, inner) => {
            let t = lower_expr(dm, inner);
            dm.add_edge(c, t, EdgeKind::Ex(r.clone()));
        }
        ConceptExpr::Forall(r, inner) => {
            let t = lower_expr(dm, inner);
            dm.add_edge(c, t, EdgeKind::All(r.clone()));
        }
        or @ ConceptExpr::Or(_) => {
            let t = lower_expr(dm, or);
            dm.add_edge(c, t, EdgeKind::Isa);
        }
    }
}

/// Parses axioms and applies them all to `dm`.
pub fn load_axioms(dm: &mut DomainMap, src: &str) -> Result<Vec<Axiom>, DmError> {
    let axioms = parse_axioms(src)?;
    for ax in &axioms {
        apply_axiom(dm, ax);
    }
    Ok(axioms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    #[test]
    fn parses_simple_subsumption() {
        let axs = parse_axioms("Axon, Dendrite, Soma < Compartment.").unwrap();
        assert_eq!(axs.len(), 1);
        assert_eq!(axs[0].subjects, vec!["Axon", "Dendrite", "Soma"]);
        assert_eq!(axs[0].op, AxiomOp::Sub);
        assert_eq!(axs[0].rhs, ConceptExpr::Atomic("Compartment".into()));
    }

    #[test]
    fn parses_exists_and_conjunction() {
        let axs = parse_axioms("Spiny_Neuron = Neuron and exists has.Spine.").unwrap();
        let ConceptExpr::And(ms) = &axs[0].rhs else {
            panic!("{:?}", axs[0].rhs)
        };
        assert_eq!(ms.len(), 2);
        assert!(matches!(&ms[1], ConceptExpr::Exists(r, _) if r == "has"));
    }

    #[test]
    fn parses_or_groups() {
        let axs = parse_axioms("M < exists proj.(A or B or C).").unwrap();
        let ConceptExpr::Exists(_, inner) = &axs[0].rhs else {
            panic!()
        };
        assert!(matches!(&**inner, ConceptExpr::Or(ms) if ms.len() == 3));
    }

    #[test]
    fn parses_forall() {
        let axs = parse_axioms("MyNeuron < all has.MyDendrite.").unwrap();
        assert!(matches!(&axs[0].rhs, ConceptExpr::Forall(r, _) if r == "has"));
    }

    #[test]
    fn roundtrip_display_reparses() {
        let src = "MyNeuron < Medium_Spiny_Neuron and exists proj.GPE and all has.MyDendrite.";
        let axs = parse_axioms(src).unwrap();
        let printed = axs[0].to_string();
        let axs2 = parse_axioms(&printed).unwrap();
        assert_eq!(axs, axs2);
    }

    #[test]
    fn sub_axiom_attaches_edges_directly() {
        let mut dm = DomainMap::new();
        load_axioms(&mut dm, "Neuron < exists has.Compartment.").unwrap();
        let n = dm.lookup("Neuron").unwrap();
        let out: Vec<_> = dm.out_edges(n).collect();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].kind, EdgeKind::Ex("has".into()));
        assert_eq!(dm.name(out[0].to), Some("Compartment"));
    }

    #[test]
    fn eqv_axiom_creates_and_node() {
        let mut dm = DomainMap::new();
        load_axioms(&mut dm, "Spiny_Neuron = Neuron and exists has.Spine.").unwrap();
        let s = dm.lookup("Spiny_Neuron").unwrap();
        let eqv: Vec<_> = dm
            .out_edges(s)
            .filter(|e| e.kind == EdgeKind::Eqv)
            .collect();
        assert_eq!(eqv.len(), 1);
        let target = eqv[0].to;
        assert!(matches!(dm.node_kind(target), NodeKind::And));
        assert_eq!(dm.out_edges(target).count(), 2);
    }

    #[test]
    fn or_target_becomes_or_node() {
        let mut dm = DomainMap::new();
        load_axioms(&mut dm, "M < exists proj.(A or B).").unwrap();
        let m = dm.lookup("M").unwrap();
        let e: Vec<_> = dm.out_edges(m).collect();
        let target = e[0].to;
        assert!(matches!(dm.node_kind(target), NodeKind::Or));
        assert_eq!(dm.out_edges(target).count(), 2);
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = parse_axioms("Neuron < ").unwrap_err();
        assert!(matches!(err, DmError::AxiomParse { .. }));
    }

    #[test]
    fn to_axioms_roundtrips_semantics() {
        use crate::figures;
        use crate::ops::Resolved;
        for original in [figures::figure1(), figures::figure3()] {
            let text = to_axioms(&original);
            let mut reloaded = DomainMap::new();
            load_axioms(&mut reloaded, &text)
                .unwrap_or_else(|e| panic!("reload failed: {e}\n{text}"));
            let r1 = Resolved::new(&original);
            let r2 = Resolved::new(&reloaded);
            // Same concept set.
            let mut n1: Vec<&str> = original.concepts().map(|(_, n)| n).collect();
            let mut n2: Vec<&str> = reloaded.concepts().map(|(_, n)| n).collect();
            n1.sort();
            n2.sort();
            assert_eq!(n1, n2);
            // Same resolved isa and role semantics, name-wise.
            for (a, an) in original.concepts() {
                for (b, bn) in original.concepts() {
                    let (a2, b2) = (reloaded.lookup(an).unwrap(), reloaded.lookup(bn).unwrap());
                    assert_eq!(
                        r1.is_subconcept(a, b),
                        r2.is_subconcept(a2, b2),
                        "isa mismatch {an} vs {bn}"
                    );
                }
            }
            for role in original.roles() {
                let p1: std::collections::HashSet<(String, String)> = r1
                    .dc_pairs(role)
                    .into_iter()
                    .filter_map(|(x, y)| {
                        Some((original.name(x)?.to_string(), original.name(y)?.to_string()))
                    })
                    .collect();
                let p2: std::collections::HashSet<(String, String)> = r2
                    .dc_pairs(role)
                    .into_iter()
                    .filter_map(|(x, y)| {
                        Some((reloaded.name(x)?.to_string(), reloaded.name(y)?.to_string()))
                    })
                    .collect();
                assert_eq!(p1, p2, "role {role} mismatch");
            }
        }
    }

    #[test]
    fn comments_skipped() {
        let axs = parse_axioms("% intro\nA < B. // end\n%tail").unwrap();
        assert_eq!(axs.len(), 1);
    }
}
