//! Graph operations on domain maps (§4 "Integrated Views Using Domain
//! Maps", §5 query processing): transitive closures, deductive closures,
//! least upper bounds, downward closures, and recursive aggregation.
//!
//! Operations run on a [`Resolved`] view of the map, which inlines
//! anonymous AND nodes (their members/role edges become the defining
//! concept's own) and reads `eqv` edges to named concepts as mutual
//! `isa`. OR targets contribute nothing here: a disjunction licenses no
//! definite concept-level link.

use crate::graph::{DomainMap, EdgeKind, NodeId, NodeKind};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, RwLock};

/// A write-once memo table with a read API on `&self`. An `RwLock`
/// (rather than `RefCell`) keeps the tables `Sync`, so one shared
/// [`Resolved`] can be probed concurrently from many query threads;
/// racing writers at worst recompute the same deterministic value.
type Memo<K, V> = RwLock<HashMap<K, V>>;
/// Memo key for a per-role, per-node closure.
type RoleNode = (String, NodeId);
/// A shared node-set result (ancestor/descendant cones).
type NodeSet = Arc<HashSet<NodeId>>;

/// Memo tables for the closure operations. A [`Resolved`] view is
/// immutable once built — any change to the domain map rebuilds it from
/// scratch ([`Resolved::new`]), which is the cache-invalidation rule — so
/// every entry is write-once and shared results can be handed out as
/// `Arc`s. Interior mutability keeps the read API on `&self`.
#[derive(Debug, Default)]
struct Caches {
    ancestors: Memo<NodeId, NodeSet>,
    descendants: Memo<NodeId, NodeSet>,
    lub: Memo<Vec<NodeId>, Option<NodeId>>,
    glb: Memo<Vec<NodeId>, Option<NodeId>>,
    plub: Memo<(String, Vec<NodeId>), Option<NodeId>>,
    pan: Memo<RoleNode, NodeSet>,
    dc_pairs: Memo<String, Arc<Vec<(NodeId, NodeId)>>>,
    dc_children: Memo<RoleNode, Arc<Vec<NodeId>>>,
    down: Memo<RoleNode, Arc<Vec<NodeId>>>,
}

impl Clone for Caches {
    fn clone(&self) -> Self {
        fn copy<K: Clone + Eq + std::hash::Hash, V: Clone>(m: &Memo<K, V>) -> Memo<K, V> {
            RwLock::new(m.read().expect("memo lock").clone())
        }
        Caches {
            ancestors: copy(&self.ancestors),
            descendants: copy(&self.descendants),
            lub: copy(&self.lub),
            glb: copy(&self.glb),
            plub: copy(&self.plub),
            pan: copy(&self.pan),
            dc_pairs: copy(&self.dc_pairs),
            dc_children: copy(&self.dc_children),
            down: copy(&self.down),
        }
    }
}

/// A flattened, named-concept-only view of a domain map.
#[derive(Debug, Clone)]
pub struct Resolved {
    /// Direct isa successors per node (named concepts only).
    isa_up: Vec<Vec<NodeId>>,
    /// Direct isa predecessors per node.
    isa_down: Vec<Vec<NodeId>>,
    /// Role name → (source, target) pairs.
    roles: HashMap<String, Vec<(NodeId, NodeId)>>,
    /// Role name → source node → targets (forward adjacency).
    role_out: HashMap<String, HashMap<NodeId, Vec<NodeId>>>,
    /// Role name → target node → sources (reverse adjacency).
    role_in: HashMap<String, HashMap<NodeId, Vec<NodeId>>>,
    node_count: usize,
    /// Closure memo tables (see [`Caches`]).
    caches: Caches,
}

impl Resolved {
    /// Builds the resolved view.
    pub fn new(dm: &DomainMap) -> Self {
        let n = dm.node_count();
        let mut isa_up = vec![Vec::new(); n];
        let mut isa_down = vec![Vec::new(); n];
        let mut roles: HashMap<String, Vec<(NodeId, NodeId)>> = HashMap::new();
        let add_isa =
            |from: NodeId, to: NodeId, up: &mut Vec<Vec<NodeId>>, down: &mut Vec<Vec<NodeId>>| {
                if !up[from.index()].contains(&to) {
                    up[from.index()].push(to);
                    down[to.index()].push(from);
                }
            };
        for (c, _) in dm.concepts() {
            for edge in dm.out_edges(c) {
                match (&edge.kind, dm.node_kind(edge.to)) {
                    (EdgeKind::Isa, NodeKind::Concept(_)) => {
                        add_isa(c, edge.to, &mut isa_up, &mut isa_down);
                    }
                    (EdgeKind::Eqv, NodeKind::Concept(_)) => {
                        add_isa(c, edge.to, &mut isa_up, &mut isa_down);
                        add_isa(edge.to, c, &mut isa_up, &mut isa_down);
                    }
                    (EdgeKind::Ex(r), NodeKind::Concept(_)) => {
                        roles.entry(r.clone()).or_default().push((c, edge.to));
                    }
                    (EdgeKind::Isa | EdgeKind::Eqv, NodeKind::And) => {
                        // Inline the AND node's content as c's own.
                        for inner in dm.out_edges(edge.to) {
                            match (&inner.kind, dm.node_kind(inner.to)) {
                                (EdgeKind::Member, NodeKind::Concept(_)) => {
                                    add_isa(c, inner.to, &mut isa_up, &mut isa_down);
                                }
                                (EdgeKind::Ex(r), NodeKind::Concept(_)) => {
                                    roles.entry(r.clone()).or_default().push((c, inner.to));
                                }
                                _ => {}
                            }
                        }
                    }
                    (EdgeKind::Ex(r), NodeKind::And) => {
                        // Filler lies in every member: link to each.
                        for inner in dm.out_edges(edge.to) {
                            if let (EdgeKind::Member, NodeKind::Concept(_)) =
                                (&inner.kind, dm.node_kind(inner.to))
                            {
                                roles.entry(r.clone()).or_default().push((c, inner.to));
                            }
                        }
                    }
                    // OR targets and ALL edges contribute no definite
                    // concept-level links.
                    _ => {}
                }
            }
        }
        let mut role_out: HashMap<String, HashMap<NodeId, Vec<NodeId>>> = HashMap::new();
        let mut role_in: HashMap<String, HashMap<NodeId, Vec<NodeId>>> = HashMap::new();
        for (role, pairs) in &roles {
            let out = role_out.entry(role.clone()).or_default();
            let inc = role_in.entry(role.clone()).or_default();
            for &(s, t) in pairs {
                out.entry(s).or_default().push(t);
                inc.entry(t).or_default().push(s);
            }
        }
        Resolved {
            isa_up,
            isa_down,
            roles,
            role_out,
            role_in,
            node_count: n,
            caches: Caches::default(),
        }
    }

    /// Whether two resolved views describe the **same graph structure** —
    /// identical isa adjacency and role pairs over the same node count.
    /// Memo-table contents are deliberately ignored: a view is immutable
    /// once built, so structural equality means every memoized closure of
    /// `other` is still valid. The knowledge layer uses this to keep the
    /// *old* (warm) view when a domain-map contribution turns out not to
    /// change the resolved graph, instead of republishing a cold one.
    pub fn same_structure(&self, other: &Resolved) -> bool {
        self.node_count == other.node_count
            && self.isa_up == other.isa_up
            && self.isa_down == other.isa_down
            && self.roles == other.roles
    }

    /// Direct isa successors.
    pub fn parents(&self, n: NodeId) -> &[NodeId] {
        &self.isa_up[n.index()]
    }

    /// Direct isa predecessors.
    pub fn children(&self, n: NodeId) -> &[NodeId] {
        &self.isa_down[n.index()]
    }

    /// All ancestors of `n` (reflexive: includes `n`). Memoized: repeat
    /// calls share one allocation.
    pub fn ancestors(&self, n: NodeId) -> Arc<HashSet<NodeId>> {
        if let Some(hit) = self.caches.ancestors.read().expect("memo lock").get(&n) {
            return Arc::clone(hit);
        }
        let set = Arc::new(self.reach(n, |x| &self.isa_up[x.index()]));
        self.caches
            .ancestors
            .write()
            .expect("memo lock")
            .insert(n, Arc::clone(&set));
        set
    }

    /// All descendants of `n` (reflexive: includes `n`). Memoized.
    pub fn descendants(&self, n: NodeId) -> Arc<HashSet<NodeId>> {
        if let Some(hit) = self.caches.descendants.read().expect("memo lock").get(&n) {
            return Arc::clone(hit);
        }
        let set = Arc::new(self.reach(n, |x| &self.isa_down[x.index()]));
        self.caches
            .descendants
            .write()
            .expect("memo lock")
            .insert(n, Arc::clone(&set));
        set
    }

    fn reach<'a>(
        &'a self,
        start: NodeId,
        next: impl Fn(NodeId) -> &'a [NodeId],
    ) -> HashSet<NodeId> {
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(x) = queue.pop_front() {
            for &y in next(x) {
                if seen.insert(y) {
                    queue.push_back(y);
                }
            }
        }
        seen
    }

    /// Whether `sub` is (transitively, reflexively) a subconcept of `sup`.
    pub fn is_subconcept(&self, sub: NodeId, sup: NodeId) -> bool {
        self.ancestors(sub).contains(&sup)
    }

    /// The **least upper bound** of a set of concepts in the isa lattice
    /// (§5 step 4: "computing the least upper bound of locations in the
    /// domain map" to find the distribution root).
    ///
    /// Returns a minimal common ancestor (one with no other common
    /// ancestor strictly below it); ties are broken by smallest node id
    /// so the result is deterministic. `None` for an empty input or when
    /// no common ancestor exists.
    pub fn lub(&self, nodes: &[NodeId]) -> Option<NodeId> {
        // Order- and multiplicity-insensitive, so a sorted deduped key is
        // a sound cache key.
        let mut key = nodes.to_vec();
        key.sort();
        key.dedup();
        if let Some(&hit) = self.caches.lub.read().expect("memo lock").get(&key) {
            return hit;
        }
        let result = self.lub_uncached(&key);
        self.caches
            .lub
            .write()
            .expect("memo lock")
            .insert(key, result);
        result
    }

    fn lub_uncached(&self, nodes: &[NodeId]) -> Option<NodeId> {
        let mut iter = nodes.iter();
        let first = *iter.next()?;
        let mut common = (*self.ancestors(first)).clone();
        for &n in iter {
            let a = self.ancestors(n);
            common.retain(|x| a.contains(x));
            if common.is_empty() {
                return None;
            }
        }
        // Minimal elements: no other common ancestor *strictly* below
        // (mutually-equivalent concepts do not disqualify each other).
        let mut minimal: Vec<NodeId> = common
            .iter()
            .copied()
            .filter(|&m| {
                !common
                    .iter()
                    .any(|&o| o != m && self.is_subconcept(o, m) && !self.is_subconcept(m, o))
            })
            .collect();
        minimal.sort();
        minimal.first().copied()
    }

    /// The greatest lower bound (dual of [`Self::lub`]).
    pub fn glb(&self, nodes: &[NodeId]) -> Option<NodeId> {
        let mut key = nodes.to_vec();
        key.sort();
        key.dedup();
        if let Some(&hit) = self.caches.glb.read().expect("memo lock").get(&key) {
            return hit;
        }
        let result = self.glb_uncached(&key);
        self.caches
            .glb
            .write()
            .expect("memo lock")
            .insert(key, result);
        result
    }

    fn glb_uncached(&self, nodes: &[NodeId]) -> Option<NodeId> {
        let mut iter = nodes.iter();
        let first = *iter.next()?;
        let mut common = (*self.descendants(first)).clone();
        for &n in iter {
            let d = self.descendants(n);
            common.retain(|x| d.contains(x));
            if common.is_empty() {
                return None;
            }
        }
        let mut maximal: Vec<NodeId> = common
            .iter()
            .copied()
            .filter(|&m| {
                !common
                    .iter()
                    .any(|&o| o != m && self.is_subconcept(m, o) && !self.is_subconcept(o, m))
            })
            .collect();
        maximal.sort();
        maximal.first().copied()
    }

    /// Direct role links (the base relation `R`).
    pub fn role_pairs(&self, role: &str) -> &[(NodeId, NodeId)] {
        self.roles.get(role).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The role names with at least one resolved link.
    pub fn role_names(&self) -> Vec<String> {
        self.roles.keys().cloned().collect()
    }

    /// The **deductive closure** `dc(R)` of a role wrt the transitive
    /// closure of isa (the paper's rules: "R links are propagated up and
    /// down the isa chains"), including the base links. The result is the
    /// set of all inferable *direct* links — the paper's `has_a_star`
    /// when `role = "has_a"`.
    pub fn dc_pairs(&self, role: &str) -> Vec<(NodeId, NodeId)> {
        if let Some(hit) = self.caches.dc_pairs.read().expect("memo lock").get(role) {
            return (**hit).clone();
        }
        let base = self.role_pairs(role).to_vec();
        let mut out: HashSet<(NodeId, NodeId)> = HashSet::new();
        for &(x, y) in &base {
            // dc(R)(X,Y) :- tc(isa)(X,Z), R(Z,Y): X any descendant of x.
            // dc(R)(X,Y) :- R(X,Z), tc(isa)(Z,Y): Y any ancestor of y.
            // Base included; both propagations composed.
            let anc = self.ancestors(y);
            for &x2 in self.descendants(x).iter() {
                for &y2 in anc.iter() {
                    out.insert((x2, y2));
                }
            }
        }
        let mut v: Vec<_> = out.into_iter().collect();
        v.sort();
        self.caches
            .dc_pairs
            .write()
            .expect("memo lock")
            .insert(role.to_string(), Arc::new(v.clone()));
        v
    }

    /// The children of `n` under `dc(role)` — the "direct inferable
    /// links" used for recursive traversal instead of materializing
    /// `tc(has_a_star)` (which the paper calls wasteful).
    pub fn dc_children(&self, role: &str, n: NodeId) -> Vec<NodeId> {
        (*self.dc_children_rc(role, n)).clone()
    }

    fn dc_children_rc(&self, role: &str, n: NodeId) -> Arc<Vec<NodeId>> {
        if let Some(hit) = self
            .caches
            .dc_children
            .read()
            .expect("memo lock")
            .get(&(role.to_string(), n))
        {
            return Arc::clone(hit);
        }
        // Links whose source is n or any ancestor of n are inherited
        // down to n; collect their targets via the forward index.
        let mut out = HashSet::new();
        if let Some(adj) = self.role_out.get(role) {
            for &a in self.ancestors(n).iter() {
                if let Some(ts) = adj.get(&a) {
                    out.extend(ts.iter().copied());
                }
            }
        }
        let mut v: Vec<_> = out.into_iter().collect();
        v.sort();
        let rc = Arc::new(v);
        self.caches
            .dc_children
            .write()
            .expect("memo lock")
            .insert((role.to_string(), n), Arc::clone(&rc));
        rc
    }

    /// The **downward closure** along `dc(role)` from `root`: every
    /// concept reachable by recursively following inferable direct links
    /// (the "region of correspondence" computation of §5 step 4).
    pub fn downward_closure(&self, role: &str, root: NodeId) -> Vec<NodeId> {
        (*self.downward_closure_rc(role, root)).clone()
    }

    fn downward_closure_rc(&self, role: &str, root: NodeId) -> Arc<Vec<NodeId>> {
        if let Some(hit) = self
            .caches
            .down
            .read()
            .expect("memo lock")
            .get(&(role.to_string(), root))
        {
            return Arc::clone(hit);
        }
        let mut seen = HashSet::new();
        let mut order = Vec::new();
        let mut queue = VecDeque::new();
        seen.insert(root);
        queue.push_back(root);
        while let Some(x) = queue.pop_front() {
            order.push(x);
            for &y in self.dc_children_rc(role, x).iter() {
                if seen.insert(y) {
                    queue.push_back(y);
                }
            }
            // Subconcepts of x are also part of the region below x.
            for &y in self.children(x) {
                if seen.insert(y) {
                    queue.push_back(y);
                }
            }
        }
        let rc = Arc::new(order);
        self.caches
            .down
            .write()
            .expect("memo lock")
            .insert((role.to_string(), root), Arc::clone(&rc));
        rc
    }

    /// The partonomy-ancestors of `n` under `role` (reflexive): every
    /// concept whose [`Self::downward_closure`] contains `n`. One upward
    /// step inverts the closure's two downward steps: follow a role link
    /// `(s, n)` up to `s` and all its isa-descendants (they inherit the
    /// link), or step to an isa-parent.
    pub fn partonomy_ancestors(&self, role: &str, n: NodeId) -> Arc<HashSet<NodeId>> {
        if let Some(hit) = self
            .caches
            .pan
            .read()
            .expect("memo lock")
            .get(&(role.to_string(), n))
        {
            return Arc::clone(hit);
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(n);
        queue.push_back(n);
        while let Some(x) = queue.pop_front() {
            if let Some(srcs) = self.role_in.get(role).and_then(|m| m.get(&x)) {
                for s in srcs {
                    for &d in self.descendants(*s).iter() {
                        if seen.insert(d) {
                            queue.push_back(d);
                        }
                    }
                }
            }
            for &p in self.parents(x) {
                if seen.insert(p) {
                    queue.push_back(p);
                }
            }
        }
        let rc = Arc::new(seen);
        self.caches
            .pan
            .write()
            .expect("memo lock")
            .insert((role.to_string(), n), Arc::clone(&rc));
        rc
    }

    /// The **least upper bound in the partonomy order** (§5 step 4): the
    /// smallest "region of correspondence" whose downward closure along
    /// `role` contains every given concept. Deterministic tie-break by
    /// node id.
    pub fn partonomy_lub(&self, role: &str, nodes: &[NodeId]) -> Option<NodeId> {
        let mut key = nodes.to_vec();
        key.sort();
        key.dedup();
        let full_key = (role.to_string(), key);
        if let Some(&hit) = self.caches.plub.read().expect("memo lock").get(&full_key) {
            return hit;
        }
        let result = self.partonomy_lub_uncached(role, &full_key.1);
        self.caches
            .plub
            .write()
            .expect("memo lock")
            .insert(full_key, result);
        result
    }

    fn partonomy_lub_uncached(&self, role: &str, nodes: &[NodeId]) -> Option<NodeId> {
        let mut iter = nodes.iter();
        let first = *iter.next()?;
        let mut common = (*self.partonomy_ancestors(role, first)).clone();
        for &n in iter {
            let a = self.partonomy_ancestors(role, n);
            common.retain(|x| a.contains(x));
            if common.is_empty() {
                return None;
            }
        }
        // Minimal wrt the partonomy order: m is not minimal if another
        // common ancestor lies strictly below it.
        let below: HashMap<NodeId, HashSet<NodeId>> = common
            .iter()
            .map(|&m| (m, self.downward_closure(role, m).into_iter().collect()))
            .collect();
        let mut minimal: Vec<NodeId> = common
            .iter()
            .copied()
            .filter(|&m| {
                !common
                    .iter()
                    .any(|&o| o != m && below[&m].contains(&o) && !below[&o].contains(&m))
            })
            .collect();
        minimal.sort();
        minimal.first().copied()
    }

    /// Materializes the full transitive closure of `dc(role)` — the
    /// operation the paper argues is *wasteful* to compute when a
    /// recursive traversal of direct links suffices. Kept as the ablation
    /// baseline (see DESIGN.md).
    pub fn tc_of_dc(&self, role: &str) -> Vec<(NodeId, NodeId)> {
        let dc = self.dc_pairs(role);
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); self.node_count];
        for &(x, y) in &dc {
            adj[x.index()].push(y);
        }
        let mut out: HashSet<(NodeId, NodeId)> = HashSet::new();
        for start in 0..self.node_count {
            let s = NodeId(start as u32);
            let mut seen = HashSet::new();
            let mut q = VecDeque::new();
            q.push_back(s);
            while let Some(x) = q.pop_front() {
                for &y in &adj[x.index()] {
                    if seen.insert(y) {
                        out.insert((s, y));
                        q.push_back(y);
                    }
                }
            }
        }
        let mut v: Vec<_> = out.into_iter().collect();
        v.sort();
        v
    }

    /// Recursive aggregation (the `aggregate` function of Example 4):
    /// starting from `root`, traverses `dc(role)` and computes, for every
    /// concept in the downward closure, the sum of `values` over its
    /// subtree. Shared substructure (a DAG diamond) is counted once per
    /// distinct concept.
    pub fn rollup_sum(
        &self,
        role: &str,
        root: NodeId,
        values: &HashMap<NodeId, i64>,
    ) -> HashMap<NodeId, i64> {
        let region = self.downward_closure(role, root);
        let region_set: HashSet<NodeId> = region.iter().copied().collect();
        let mut totals = HashMap::new();
        for &n in &region {
            // Subtree of n within the region.
            let mut seen = HashSet::new();
            let mut q = VecDeque::new();
            seen.insert(n);
            q.push_back(n);
            let mut total = 0i64;
            while let Some(x) = q.pop_front() {
                total += values.get(&x).copied().unwrap_or(0);
                for &y in self.dc_children_rc(role, x).iter() {
                    if region_set.contains(&y) && seen.insert(y) {
                        q.push_back(y);
                    }
                }
                for &y in self.children(x) {
                    if region_set.contains(&y) && seen.insert(y) {
                        q.push_back(y);
                    }
                }
            }
            totals.insert(n, total);
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axiom::load_axioms;

    fn anatomy() -> (DomainMap, Resolved) {
        let mut dm = DomainMap::new();
        load_axioms(
            &mut dm,
            "Dendrite, Axon, Soma < Compartment.
             Spine < Ion_Regulating_Component.
             Neuron < exists has_a.Compartment.
             Dendrite < exists has_a.Branch.
             Shaft < Branch and exists has_a.Spine.
             Purkinje_Cell, Pyramidal_Cell < Spiny_Neuron.
             Spiny_Neuron < Neuron.",
        )
        .unwrap();
        let r = Resolved::new(&dm);
        (dm, r)
    }

    #[test]
    fn ancestors_are_reflexive_transitive() {
        let (dm, r) = anatomy();
        let pc = dm.lookup("Purkinje_Cell").unwrap();
        let anc = r.ancestors(pc);
        assert!(anc.contains(&pc));
        assert!(anc.contains(&dm.lookup("Spiny_Neuron").unwrap()));
        assert!(anc.contains(&dm.lookup("Neuron").unwrap()));
        assert!(!anc.contains(&dm.lookup("Compartment").unwrap()));
    }

    #[test]
    fn lub_of_siblings_is_common_parent() {
        let (dm, r) = anatomy();
        let pc = dm.lookup("Purkinje_Cell").unwrap();
        let py = dm.lookup("Pyramidal_Cell").unwrap();
        assert_eq!(r.lub(&[pc, py]), Some(dm.lookup("Spiny_Neuron").unwrap()));
        // lub of a single node is itself (reflexive).
        assert_eq!(r.lub(&[pc]), Some(pc));
    }

    #[test]
    fn lub_none_for_unrelated() {
        let (dm, r) = anatomy();
        let pc = dm.lookup("Purkinje_Cell").unwrap();
        let sp = dm.lookup("Spine").unwrap();
        assert_eq!(r.lub(&[pc, sp]), None);
    }

    #[test]
    fn glb_dual() {
        let (dm, r) = anatomy();
        let sn = dm.lookup("Spiny_Neuron").unwrap();
        let n = dm.lookup("Neuron").unwrap();
        assert_eq!(r.glb(&[sn, n]), Some(sn));
    }

    #[test]
    fn dc_propagates_links_down_isa() {
        let (dm, r) = anatomy();
        // Neuron -has_a-> Compartment, Purkinje_Cell :: Neuron
        // => dc gives Purkinje_Cell -has_a-> Compartment.
        let pc = dm.lookup("Purkinje_Cell").unwrap();
        let comp = dm.lookup("Compartment").unwrap();
        assert!(r.dc_pairs("has_a").contains(&(pc, comp)));
        assert!(r.dc_children("has_a", pc).contains(&comp));
    }

    #[test]
    fn dc_lifts_targets_up_isa() {
        let (dm, r) = anatomy();
        // Dendrite -has_a-> Branch; Shaft :: Branch so no lift there, but
        // Spine < IRC means Shaft -has_a-> Spine lifts to IRC.
        let shaft = dm.lookup("Shaft").unwrap();
        let irc = dm.lookup("Ion_Regulating_Component").unwrap();
        assert!(r.dc_pairs("has_a").contains(&(shaft, irc)));
    }

    #[test]
    fn downward_closure_walks_partonomy() {
        let (dm, r) = anatomy();
        let neuron = dm.lookup("Neuron").unwrap();
        let region = r.downward_closure("has_a", neuron);
        let names: Vec<&str> = region.iter().filter_map(|&n| dm.name(n)).collect();
        assert!(names.contains(&"Compartment"));
        assert!(names.contains(&"Dendrite")); // subconcept of Compartment
        assert!(names.contains(&"Branch")); // dendrite has_a branch
        assert!(names.contains(&"Spine")); // shaft (a branch) has_a spine
    }

    #[test]
    fn tc_of_dc_is_superset_of_dc() {
        let (_, r) = anatomy();
        let dc: HashSet<_> = r.dc_pairs("has_a").into_iter().collect();
        let tc: HashSet<_> = r.tc_of_dc("has_a").into_iter().collect();
        assert!(dc.iter().all(|p| tc.contains(p)));
        assert!(tc.len() >= dc.len());
    }

    #[test]
    fn partonomy_lub_finds_containing_region() {
        let mut dm = DomainMap::new();
        load_axioms(
            &mut dm,
            "Cerebellum < exists has_a.Purkinje_Layer.
             Purkinje_Layer < exists has_a.Purkinje_Cell.
             Purkinje_Cell < exists has_a.Purkinje_Dendrite.
             Cerebellum < exists has_a.Granule_Layer.
             Granule_Layer < exists has_a.Granule_Cell.",
        )
        .unwrap();
        let r = Resolved::new(&dm);
        let pc = dm.lookup("Purkinje_Cell").unwrap();
        let pd = dm.lookup("Purkinje_Dendrite").unwrap();
        let gc = dm.lookup("Granule_Cell").unwrap();
        let cb = dm.lookup("Cerebellum").unwrap();
        // The dendrite is inside the cell: lub is the cell itself.
        assert_eq!(r.partonomy_lub("has_a", &[pc, pd]), Some(pc));
        // Purkinje and granule cells only meet at the cerebellum.
        assert_eq!(r.partonomy_lub("has_a", &[pc, gc]), Some(cb));
        // Reflexive.
        assert_eq!(r.partonomy_lub("has_a", &[cb]), Some(cb));
    }

    #[test]
    fn partonomy_ancestors_follow_inherited_links() {
        let mut dm = DomainMap::new();
        load_axioms(
            &mut dm,
            "Neuron < exists has_a.Dendrite.
             Purkinje_Cell < Neuron.",
        )
        .unwrap();
        let r = Resolved::new(&dm);
        let d = dm.lookup("Dendrite").unwrap();
        let pc = dm.lookup("Purkinje_Cell").unwrap();
        // Purkinje_Cell inherits Neuron's has_a link, so it is a
        // partonomy ancestor of Dendrite.
        assert!(r.partonomy_ancestors("has_a", d).contains(&pc));
    }

    #[test]
    fn rollup_sums_subtrees() {
        let mut dm = DomainMap::new();
        load_axioms(
            &mut dm,
            "Cerebellum < exists has_a.Purkinje_Layer.
             Cerebellum < exists has_a.Granule_Layer.
             Purkinje_Layer < exists has_a.Purkinje_Cell.",
        )
        .unwrap();
        let r = Resolved::new(&dm);
        let cb = dm.lookup("Cerebellum").unwrap();
        let pl = dm.lookup("Purkinje_Layer").unwrap();
        let gl = dm.lookup("Granule_Layer").unwrap();
        let pc = dm.lookup("Purkinje_Cell").unwrap();
        let mut values = HashMap::new();
        values.insert(pc, 5);
        values.insert(gl, 3);
        let totals = r.rollup_sum("has_a", cb, &values);
        assert_eq!(totals[&pc], 5);
        assert_eq!(totals[&pl], 5);
        assert_eq!(totals[&gl], 3);
        assert_eq!(totals[&cb], 8);
    }

    #[test]
    fn eqv_links_resolve_to_mutual_isa() {
        let mut dm = DomainMap::new();
        load_axioms(&mut dm, "A = B.").unwrap();
        let r = Resolved::new(&dm);
        let a = dm.lookup("A").unwrap();
        let b = dm.lookup("B").unwrap();
        assert!(r.is_subconcept(a, b));
        assert!(r.is_subconcept(b, a));
        assert_eq!(r.lub(&[a, b]), Some(a.min(b)));
    }

    #[test]
    fn closures_are_memoized_and_stable() {
        let (dm, r) = anatomy();
        let pc = dm.lookup("Purkinje_Cell").unwrap();
        let neuron = dm.lookup("Neuron").unwrap();
        // Repeat calls return the shared cached allocation…
        assert!(Arc::ptr_eq(&r.ancestors(pc), &r.ancestors(pc)));
        assert!(Arc::ptr_eq(&r.descendants(neuron), &r.descendants(neuron)));
        assert!(Arc::ptr_eq(
            &r.partonomy_ancestors("has_a", pc),
            &r.partonomy_ancestors("has_a", pc)
        ));
        // …and cached results agree with themselves across call styles.
        assert_eq!(r.dc_pairs("has_a"), r.dc_pairs("has_a"));
        assert_eq!(r.dc_children("has_a", pc), r.dc_children("has_a", pc));
        assert_eq!(
            r.downward_closure("has_a", neuron),
            r.downward_closure("has_a", neuron)
        );
        // lub cache key is order-insensitive.
        let py = dm.lookup("Pyramidal_Cell").unwrap();
        assert_eq!(r.lub(&[pc, py]), r.lub(&[py, pc]));
        // A clone shares the already-warm caches without interference.
        let r2 = r.clone();
        assert_eq!(*r2.ancestors(pc), *r.ancestors(pc));
    }

    #[test]
    fn and_inlining_exposes_role_links() {
        let mut dm = DomainMap::new();
        load_axioms(&mut dm, "Spiny_Neuron = Neuron and exists has_a.Spine.").unwrap();
        let r = Resolved::new(&dm);
        let sn = dm.lookup("Spiny_Neuron").unwrap();
        let spine = dm.lookup("Spine").unwrap();
        let neuron = dm.lookup("Neuron").unwrap();
        assert!(r.is_subconcept(sn, neuron));
        assert!(r.role_pairs("has_a").contains(&(sn, spine)));
    }
}
