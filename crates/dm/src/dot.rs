//! GraphViz (DOT) rendering of domain maps — the visual form the paper
//! uses in Figures 1 and 3 ("unlabeled, gray edges ≙ isa ≙ ⊑").

use crate::graph::{DomainMap, EdgeKind, NodeKind};
use std::fmt::Write;

/// Renders the map as a DOT digraph. Concept nodes are boxes; AND/OR
/// nodes are small diamonds labeled accordingly; isa edges are gray and
/// unlabeled; role edges carry their role name; `=` edges are labeled
/// `=`; `ALL:` edges are labeled `ALL: r` — matching the figures'
/// conventions.
pub fn to_dot(dm: &DomainMap, highlight: &[&str]) -> String {
    let mut out = String::from("digraph domain_map {\n  rankdir=BT;\n  node [fontsize=10];\n");
    for id in dm.node_ids() {
        match dm.node_kind(id) {
            NodeKind::Concept(name) => {
                let style = if highlight.contains(&name.as_str()) {
                    ", style=filled, fillcolor=gray30, fontcolor=white"
                } else {
                    ""
                };
                let _ = writeln!(out, "  {id} [label=\"{name}\", shape=box{style}];");
            }
            NodeKind::And => {
                let _ = writeln!(out, "  {id} [label=\"AND\", shape=diamond, fontsize=8];");
            }
            NodeKind::Or => {
                let _ = writeln!(out, "  {id} [label=\"OR\", shape=diamond, fontsize=8];");
            }
        }
    }
    for e in dm.edges() {
        let attrs = match &e.kind {
            EdgeKind::Isa | EdgeKind::Member => "color=gray".to_string(),
            EdgeKind::Ex(r) => format!("label=\"{r}\""),
            EdgeKind::All(r) => format!("label=\"ALL: {r}\""),
            EdgeKind::Eqv => "label=\"=\"".to_string(),
        };
        let _ = writeln!(out, "  {} -> {} [{attrs}];", e.from, e.to);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{figure1, figure3};

    #[test]
    fn figure1_renders() {
        let dot = to_dot(&figure1(), &[]);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("label=\"Neuron\""));
        assert!(dot.contains("label=\"has\""));
        assert!(dot.contains("label=\"=\""));
        assert!(dot.contains("shape=diamond"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn figure3_highlights_registered_concepts() {
        let dot = to_dot(&figure3(), &["MyNeuron", "MyDendrite"]);
        // Dark nodes as in the figure.
        let dark = dot.matches("fillcolor=gray30").count();
        assert_eq!(dark, 2);
        assert!(dot.contains("label=\"ALL: has\""));
    }

    #[test]
    fn node_and_edge_counts_match_graph() {
        let dm = figure1();
        let dot = to_dot(&dm, &[]);
        let node_lines = dot.lines().filter(|l| l.contains("shape=")).count();
        assert_eq!(node_lines, dm.node_count());
        let edge_lines = dot.lines().filter(|l| l.contains(" -> ")).count();
        assert_eq!(edge_lines, dm.edge_count());
    }
}
