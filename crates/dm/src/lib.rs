//! # kind-dm — domain maps
//!
//! Domain maps are the paper's central device for mediating across
//! "multiple worlds": expert knowledge bases — "semantic nets of concepts
//! and relationships" with (i) a formal semantics, (ii) rule-based
//! extensions, and (iii) the ability to be *executed* during query
//! processing (§1, §4).
//!
//! * [`graph`] — concepts, roles, and the six edge kinds of Definition 1;
//! * [`axiom`] — DL axiom syntax (`C < exists r.D.`) and lowering;
//! * [`rules`] — executing edges as integrity constraints or skolem
//!   assertions, plus the paper's closure rules (`tc`, `dc`,
//!   `has_a_star`);
//! * [`ops`] — pure-graph operations: ancestors/descendants, **lub/glb**,
//!   deductive closures, downward closures, recursive aggregation;
//! * [`semindex`] — the semantic index sources build into the DM at
//!   registration, used for source selection (§5 step 2);
//! * [`subsume`] — structural subsumption on the decidable fragment
//!   (Proposition 1 makes the unrestricted case undecidable);
//! * [`figures`] — the exact Figure 1 / Figure 3 maps and a scalable
//!   anatomy generator;
//! * [`dot`] — GraphViz rendering of domain maps (how the paper draws
//!   them).
#![warn(missing_docs)]

pub mod axiom;
pub mod dot;
pub mod error;
pub mod figures;
pub mod graph;
pub mod ops;
pub mod rules;
pub mod semindex;
pub mod subsume;

pub use axiom::{
    apply_axiom, load_axioms, parse_axioms, parse_concept_expr, to_axioms, Axiom, AxiomOp,
    ConceptExpr,
};
pub use error::{DmError, Result};
pub use graph::{DomainMap, Edge, EdgeKind, NodeId, NodeKind};
pub use ops::Resolved;
pub use rules::{compile, DmProgram, ExecMode, DM_OPS_RULES};
pub use semindex::{SemanticIndex, SourceId};
