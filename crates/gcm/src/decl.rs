//! GCM core expressions — the left column of Table 1, as typed data.
//!
//! The GCM demands exactly four atomic declaration forms (§3): INST, SUB,
//! METH (schema and instance level), and REL (schema and instance level),
//! plus the rule/constraint extension mechanism (RULES, IC). Everything a
//! wrapper exports about its conceptual model is a sequence of these.

use std::fmt;

/// A ground GCM value: an object identifier / symbolic constant, an
/// integer, or a string (strings and symbols share the constant namespace
/// downstream; the distinction is kept for faithful XML round-trips).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GcmValue {
    /// A symbolic identifier (object name, class name).
    Id(String),
    /// An integer.
    Int(i64),
    /// A string literal.
    Str(String),
}

impl GcmValue {
    /// The value as FL term syntax.
    pub fn to_fl(&self) -> String {
        match self {
            GcmValue::Id(s) => s.clone(),
            GcmValue::Int(i) => i.to_string(),
            GcmValue::Str(s) => format!("{s:?}"),
        }
    }
}

impl fmt::Display for GcmValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GcmValue::Id(s) | GcmValue::Str(s) => f.write_str(s),
            GcmValue::Int(i) => write!(f, "{i}"),
        }
    }
}

/// One GCM declaration (schema- or instance-level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GcmDecl {
    /// `instance(X, C)` — object `obj` is an instance of class `class`.
    Instance {
        /// Object name.
        obj: String,
        /// Class name.
        class: String,
    },
    /// `subclass(C1, C2)`.
    Subclass {
        /// The subclass.
        sub: String,
        /// The superclass.
        sup: String,
    },
    /// `method(C, M, CM)` — signature: method `method` on class `class`
    /// yields objects of `result`.
    Method {
        /// Class carrying the method.
        class: String,
        /// Method name.
        method: String,
        /// Result class.
        result: String,
    },
    /// `methodinst(X, M, Y)` — instance-level method value.
    MethodInst {
        /// Object.
        obj: String,
        /// Method name.
        method: String,
        /// Value.
        value: GcmValue,
    },
    /// `relation(R, A1=C1, …, An=Cn)` — n-ary relation schema.
    Relation {
        /// Relation name.
        name: String,
        /// `(role, class)` pairs in positional order.
        roles: Vec<(String, String)>,
    },
    /// `relationinst(R, A1=X1, …, An=Xn)` — a relation tuple, by role.
    RelationInst {
        /// Relation name.
        name: String,
        /// `(role, value)` pairs (any order; resolved against the schema).
        values: Vec<(String, GcmValue)>,
    },
    /// A semantic rule in FL syntax (the GCM extension mechanism, §3
    /// RULES) — e.g. a derived ("virtual") class or a domain constraint.
    Rule {
        /// FL rule text (one or more clauses).
        text: String,
    },
}

impl GcmDecl {
    /// Renders the declaration in FL syntax (Table 1 middle column).
    /// Relation schemas/instances use the frame forms
    /// `R[A1 => C1; …]` / `R[A1 -> X1; …]`.
    pub fn to_fl(&self) -> String {
        match self {
            GcmDecl::Instance { obj, class } => format!("{obj} : {class}."),
            GcmDecl::Subclass { sub, sup } => format!("{sub} :: {sup}."),
            GcmDecl::Method {
                class,
                method,
                result,
            } => format!("{class}[{method} => {result}]."),
            GcmDecl::MethodInst { obj, method, value } => {
                format!("{obj}[{method} -> {}].", value.to_fl())
            }
            GcmDecl::Relation { name, roles } => {
                let specs: Vec<String> = roles.iter().map(|(a, c)| format!("{a} => {c}")).collect();
                format!("{name}[{}].", specs.join("; "))
            }
            GcmDecl::RelationInst { name, values } => {
                let specs: Vec<String> = values
                    .iter()
                    .map(|(a, v)| format!("{a} -> {}", v.to_fl()))
                    .collect();
                format!("{name}[{}].", specs.join("; "))
            }
            GcmDecl::Rule { text } => text.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fl_rendering_matches_table1() {
        assert_eq!(
            GcmDecl::Instance {
                obj: "n1".into(),
                class: "neuron".into()
            }
            .to_fl(),
            "n1 : neuron."
        );
        assert_eq!(
            GcmDecl::Subclass {
                sub: "axon".into(),
                sup: "compartment".into()
            }
            .to_fl(),
            "axon :: compartment."
        );
        assert_eq!(
            GcmDecl::Method {
                class: "neuron".into(),
                method: "has".into(),
                result: "compartment".into()
            }
            .to_fl(),
            "neuron[has => compartment]."
        );
        assert_eq!(
            GcmDecl::MethodInst {
                obj: "n1".into(),
                method: "size".into(),
                value: GcmValue::Int(42)
            }
            .to_fl(),
            "n1[size -> 42]."
        );
    }

    #[test]
    fn relation_rendering() {
        let rel = GcmDecl::Relation {
            name: "has".into(),
            roles: vec![
                ("whole".into(), "neuron".into()),
                ("part".into(), "compartment".into()),
            ],
        };
        assert_eq!(rel.to_fl(), "has[whole => neuron; part => compartment].");
    }

    #[test]
    fn string_values_quoted() {
        let d = GcmDecl::MethodInst {
            obj: "c1".into(),
            method: "location".into(),
            value: GcmValue::Str("Purkinje Cell".into()),
        };
        assert_eq!(d.to_fl(), "c1[location -> \"Purkinje Cell\"].");
    }
}
