//! # kind-gcm — the Generic Conceptual Model
//!
//! The GCM is the paper's meta-model for conceptual models (§3): a
//! minimal core (INST, SUB, METH, REL declarations) plus a rule-based
//! extension mechanism with integrity constraints whose violations insert
//! failure witnesses into the distinguished inconsistency class `ic`.
//!
//! This crate provides:
//!
//! * [`GcmDecl`] / [`ConceptualModel`] — typed GCM declarations (the left
//!   column of Table 1) with an FL rendering (the middle column);
//! * [`GcmBase`] — the mediator-side GCM engine: an F-logic knowledge
//!   base hosting any number of applied CMs, with meta-level reflection
//!   so constraints can quantify over relations and classes;
//! * [`constraints`] — Example 2 (partial orders) and Example 3
//!   (cardinality constraints) as a reusable, declaration-driven library;
//! * [`xml_codec`] — the GCM XML wire format (§2);
//! * [`PluginRegistry`] — the CM plug-in mechanism: XML-encoded
//!   translators mapping foreign formalisms (ER, UXF/UML, RDFS) into the
//!   wire format, registered over the wire.
#![warn(missing_docs)]

pub mod cm;
pub mod constraints;
pub mod decl;
pub mod error;
pub mod plugin;
pub mod xml_codec;

pub use cm::{ConceptualModel, GcmBase};
pub use constraints::{require_functional, require_inclusion, require_key, Cardinality};
pub use decl::{GcmDecl, GcmValue};
pub use error::{GcmError, Result};
pub use plugin::PluginRegistry;
