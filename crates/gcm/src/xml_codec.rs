//! The GCM wire format: encoding/decoding conceptual models as XML.
//!
//! This is the syntax in which CM schemas and data travel between wrapper
//! and mediator (§2), and the target vocabulary of every CM plug-in
//! translator: a plug-in maps some formalism's XML into *this* document
//! shape, after which a single decoder (the mediator's "single GCM
//! engine") handles everything.
//!
//! ```xml
//! <gcm name="SYNAPSE">
//!   <subclass sub="spine" sup="compartment"/>
//!   <class name="spine"/>                      <!-- optional explicit -->
//!   <method class="spine" name="length" result="float"/>
//!   <instance obj="s1" class="spine"/>
//!   <methodinst obj="s1" method="length" int="12"/>
//!   <methodinst obj="s1" method="note" str="apical"/>
//!   <relation name="has">
//!     <role name="whole" class="neuron"/>
//!     <role name="part" class="compartment"/>
//!   </relation>
//!   <relationinst name="has">
//!     <value role="whole" id="n1"/>
//!     <value role="part" id="d1"/>
//!   </relationinst>
//!   <rule>X : big :- X : spine, X[length -> L], L &gt; 10.</rule>
//! </gcm>
//! ```

use crate::cm::ConceptualModel;
use crate::decl::{GcmDecl, GcmValue};
use crate::error::{GcmError, Result};
use kind_xml::{Element, Node};

fn req<'a>(e: &'a Element, key: &str) -> Result<&'a str> {
    e.attr(key).ok_or_else(|| GcmError::Malformed {
        message: format!("<{}> missing `{key}` attribute", e.name),
    })
}

fn decode_value(e: &Element) -> Result<GcmValue> {
    if let Some(v) = e.attr("id") {
        Ok(GcmValue::Id(v.to_string()))
    } else if let Some(v) = e.attr("int") {
        v.parse()
            .map(GcmValue::Int)
            .map_err(|_| GcmError::Malformed {
                message: format!("bad integer `{v}` in <{}>", e.name),
            })
    } else if let Some(v) = e.attr("str") {
        Ok(GcmValue::Str(v.to_string()))
    } else {
        Err(GcmError::Malformed {
            message: format!("<{}> needs one of id=/int=/str=", e.name),
        })
    }
}

fn encode_value(e: Element, v: &GcmValue) -> Element {
    match v {
        GcmValue::Id(s) => e.with_attr("id", s.clone()),
        GcmValue::Int(i) => e.with_attr("int", i.to_string()),
        GcmValue::Str(s) => e.with_attr("str", s.clone()),
    }
}

/// Decodes a `<gcm>` document element into a conceptual model.
pub fn decode(root: &Element) -> Result<ConceptualModel> {
    if root.name != "gcm" {
        return Err(GcmError::Malformed {
            message: format!("expected <gcm> root, found <{}>", root.name),
        });
    }
    let mut cm = ConceptualModel::new(root.attr("name").unwrap_or("anonymous"));
    for e in root.elements() {
        let decl = match e.name.as_str() {
            "class" => {
                // An explicit class declaration: encoded as C :: C via a
                // trivial subclass (harmless under reflexivity).
                let name = req(e, "name")?;
                GcmDecl::Subclass {
                    sub: name.to_string(),
                    sup: name.to_string(),
                }
            }
            "subclass" => GcmDecl::Subclass {
                sub: req(e, "sub")?.to_string(),
                sup: req(e, "sup")?.to_string(),
            },
            "instance" => GcmDecl::Instance {
                obj: req(e, "obj")?.to_string(),
                class: req(e, "class")?.to_string(),
            },
            "method" => GcmDecl::Method {
                class: req(e, "class")?.to_string(),
                method: req(e, "name")?.to_string(),
                result: req(e, "result")?.to_string(),
            },
            "methodinst" => GcmDecl::MethodInst {
                obj: req(e, "obj")?.to_string(),
                method: req(e, "method")?.to_string(),
                value: decode_value(e)?,
            },
            "relation" => {
                let mut roles = Vec::new();
                for r in e.elements_named("role") {
                    roles.push((req(r, "name")?.to_string(), req(r, "class")?.to_string()));
                }
                GcmDecl::Relation {
                    name: req(e, "name")?.to_string(),
                    roles,
                }
            }
            "relationinst" => {
                let mut values = Vec::new();
                for v in e.elements_named("value") {
                    values.push((req(v, "role")?.to_string(), decode_value(v)?));
                }
                GcmDecl::RelationInst {
                    name: req(e, "name")?.to_string(),
                    values,
                }
            }
            "rule" => GcmDecl::Rule {
                text: e.deep_text(),
            },
            other => {
                return Err(GcmError::Malformed {
                    message: format!("unknown GCM element <{other}>"),
                })
            }
        };
        cm.decls.push(decl);
    }
    Ok(cm)
}

/// Encodes a conceptual model as a `<gcm>` element.
pub fn encode(cm: &ConceptualModel) -> Element {
    let mut root = Element::new("gcm").with_attr("name", cm.name.clone());
    for d in &cm.decls {
        let e = match d {
            GcmDecl::Instance { obj, class } => Element::new("instance")
                .with_attr("obj", obj.clone())
                .with_attr("class", class.clone()),
            GcmDecl::Subclass { sub, sup } => Element::new("subclass")
                .with_attr("sub", sub.clone())
                .with_attr("sup", sup.clone()),
            GcmDecl::Method {
                class,
                method,
                result,
            } => Element::new("method")
                .with_attr("class", class.clone())
                .with_attr("name", method.clone())
                .with_attr("result", result.clone()),
            GcmDecl::MethodInst { obj, method, value } => encode_value(
                Element::new("methodinst")
                    .with_attr("obj", obj.clone())
                    .with_attr("method", method.clone()),
                value,
            ),
            GcmDecl::Relation { name, roles } => {
                let mut rel = Element::new("relation").with_attr("name", name.clone());
                for (role, class) in roles {
                    rel = rel.with_child(
                        Element::new("role")
                            .with_attr("name", role.clone())
                            .with_attr("class", class.clone()),
                    );
                }
                rel
            }
            GcmDecl::RelationInst { name, values } => {
                let mut rel = Element::new("relationinst").with_attr("name", name.clone());
                for (role, v) in values {
                    rel = rel.with_child(encode_value(
                        Element::new("value").with_attr("role", role.clone()),
                        v,
                    ));
                }
                rel
            }
            GcmDecl::Rule { text } => Element::new("rule").with_text(text.clone()),
        };
        root.children.push(Node::Element(e));
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cm() -> ConceptualModel {
        ConceptualModel::new("SYNAPSE")
            .subclass("spine", "compartment")
            .method("spine", "length", "float")
            .instance("s1", "spine")
            .method_inst("s1", "length", GcmValue::Int(12))
            .method_inst("s1", "note", GcmValue::Str("apical".into()))
            .relation("has", &[("whole", "neuron"), ("part", "compartment")])
            .relation_inst(
                "has",
                &[
                    ("whole", GcmValue::Id("n1".into())),
                    ("part", GcmValue::Id("d1".into())),
                ],
            )
            .rule("X : big :- X : spine, X[length -> L], L > 10.")
    }

    #[test]
    fn roundtrip_preserves_declarations() {
        let cm = sample_cm();
        let xml = encode(&cm);
        let wire = kind_xml::to_string(&xml);
        let doc = kind_xml::parse(&wire).unwrap();
        let cm2 = decode(&doc.root).unwrap();
        assert_eq!(cm, cm2);
    }

    #[test]
    fn rule_text_survives_escaping() {
        let cm = ConceptualModel::new("S").rule("big(X) :- X[size -> S], S > 10, S < 99.");
        let wire = kind_xml::to_string(&encode(&cm));
        assert!(wire.contains("&gt;"));
        let cm2 = decode(&kind_xml::parse(&wire).unwrap().root).unwrap();
        assert_eq!(cm, cm2);
    }

    #[test]
    fn missing_attribute_is_malformed() {
        let doc = kind_xml::parse("<gcm><instance obj='x'/></gcm>").unwrap();
        assert!(matches!(decode(&doc.root), Err(GcmError::Malformed { .. })));
    }

    #[test]
    fn unknown_element_is_malformed() {
        let doc = kind_xml::parse("<gcm><mystery/></gcm>").unwrap();
        assert!(decode(&doc.root).is_err());
    }

    #[test]
    fn wrong_root_rejected() {
        let doc = kind_xml::parse("<notgcm/>").unwrap();
        assert!(decode(&doc.root).is_err());
    }

    #[test]
    fn decoded_cm_applies_cleanly() {
        let wire = kind_xml::to_string(&encode(&sample_cm()));
        let cm = decode(&kind_xml::parse(&wire).unwrap().root).unwrap();
        let mut base = crate::cm::GcmBase::new();
        base.apply(&cm).unwrap();
        let m = base.run().unwrap();
        assert!(base.flogic().is_instance(&m, "s1", "compartment"));
        assert!(base.flogic().is_instance(&m, "s1", "big"));
    }
}
