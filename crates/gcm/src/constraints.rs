//! The integrity-constraint library: Example 2 (partial orders) and
//! Example 3 (cardinality constraints), generalized.
//!
//! A constraint is a *denial*: a rule whose head inserts a failure witness
//! into the distinguished inconsistency class `ic` (§3 IC). The rules here
//! are written once, at the meta level, quantifying over a reified binary
//! relation `relinst(R, X, Y)`; which checks actually fire is controlled
//! by declaration facts (`po_check`, `card_first_*`, `card_second_*`).

use kind_datalog::{DatalogError, Term};
use kind_flogic::FLogic;

/// The meta-level constraint rules (installed once by
/// [`crate::cm::GcmBase::new`]).
///
/// Partial-order checks are Example 2 verbatim (modulo the reified
/// relation store): rule (1) reflexivity, (2) transitivity, (3)
/// antisymmetry. Cardinality checks follow Example 3: counting distinct
/// first-role values per second-role value and vice versa.
pub const CONSTRAINT_RULES: &str = r#"
% --- Example 2: is relation R a partial order on class C? -------------
wrc(C, R, X) : ic :-
    po_check(C, R), X : C, not relinst(R, X, X).
wtc(C, R, X, Z, Y) : ic :-
    po_check(C, R), X : C, Y : C, Z : C,
    relinst(R, X, Z), relinst(R, Z, Y), not relinst(R, X, Y).
was(C, R, X, Y) : ic :-
    po_check(C, R), X : C, relinst(R, X, Y), relinst(R, Y, X), X != Y.

% --- Example 3: cardinality constraints on binary relations -----------
% "exactly M first-role values per second-role value"
w_card_first(R, VB, N) : ic :-
    card_first_exact(R, M), relinst(R, _, VB),
    N = count{ VA [VB] ; relinst(R, VA, VB) }, N != M.
% "at most M first-role values per second-role value"
w_card_first_max(R, VB, N) : ic :-
    card_first_max(R, M), relinst(R, _, VB),
    N = count{ VA [VB] ; relinst(R, VA, VB) }, N > M.
% "exactly M second-role values per first-role value"
w_card_second(R, VA, N) : ic :-
    card_second_exact(R, M), relinst(R, VA, _),
    N = count{ VB [VA] ; relinst(R, VA, VB) }, N != M.
% "at most M second-role values per first-role value"
w_card_second_max(R, VA, N) : ic :-
    card_second_max(R, M), relinst(R, VA, _),
    N = count{ VB [VA] ; relinst(R, VA, VB) }, N > M.

% --- §3: "FO can already express all common constraints for relational
% --- models including key constraints, inclusion dependencies" ---------
% key constraint: the first role determines the second.
w_key(R, K, V1, V2) : ic :-
    key_first(R), relinst(R, K, V1), relinst(R, K, V2), V1 != V2.
% inclusion dependency: first-role values of RA appear as first-role
% values of RB.
w_incl(RA, RB, V) : ic :-
    incl_first(RA, RB), relinst(RA, V, _), not relinst_first(RB, V).
relinst_first(R, V) :- relinst(R, V, _).
% functional method: an object carries at most one value for M.
w_fd(X, M, V1, V2) : ic :-
    fd_method(M), mi(X, M, V1), mi(X, M, V2), V1 != V2.
"#;

/// A cardinality constraint on a binary relation (Example 3).
///
/// "First" / "Second" name the relation's positional roles; e.g. for
/// `has(neuron, axon)`, `FirstExact(1)` says an axon is contained in
/// exactly one neuron, and `SecondAtMost(2)` says a neuron has at most
/// two axons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cardinality {
    /// Exactly `n` distinct first-role values per second-role value.
    FirstExact(i64),
    /// At most `n` distinct first-role values per second-role value.
    FirstAtMost(i64),
    /// Exactly `n` distinct second-role values per first-role value.
    SecondExact(i64),
    /// At most `n` distinct second-role values per first-role value.
    SecondAtMost(i64),
}

/// Declares `relation` to be checked as a partial order on `class`.
pub fn require_partial_order(
    fl: &mut FLogic,
    class: &str,
    relation: &str,
) -> Result<(), DatalogError> {
    let (c, r, po) = {
        let e = fl.engine_mut();
        (e.constant(class), e.constant(relation), e.sym("po_check"))
    };
    fl.engine_mut().add_fact(po, vec![c, r]).map(|_| ())
}

/// Declares a cardinality constraint on `relation`.
pub fn require_cardinality(
    fl: &mut FLogic,
    relation: &str,
    card: Cardinality,
) -> Result<(), DatalogError> {
    let (pred_name, n) = match card {
        Cardinality::FirstExact(n) => ("card_first_exact", n),
        Cardinality::FirstAtMost(n) => ("card_first_max", n),
        Cardinality::SecondExact(n) => ("card_second_exact", n),
        Cardinality::SecondAtMost(n) => ("card_second_max", n),
    };
    let (r, p) = {
        let e = fl.engine_mut();
        (e.constant(relation), e.sym(pred_name))
    };
    fl.engine_mut()
        .add_fact(p, vec![r, Term::Int(n)])
        .map(|_| ())
}

/// Declares the first role of binary `relation` to be a key (determines
/// the second role).
pub fn require_key(fl: &mut FLogic, relation: &str) -> Result<(), DatalogError> {
    let (r, p) = {
        let e = fl.engine_mut();
        (e.constant(relation), e.sym("key_first"))
    };
    fl.engine_mut().add_fact(p, vec![r]).map(|_| ())
}

/// Declares an inclusion dependency: every first-role value of `sub_rel`
/// must occur as a first-role value of `sup_rel`.
pub fn require_inclusion(
    fl: &mut FLogic,
    sub_rel: &str,
    sup_rel: &str,
) -> Result<(), DatalogError> {
    let (a, b, p) = {
        let e = fl.engine_mut();
        (
            e.constant(sub_rel),
            e.constant(sup_rel),
            e.sym("incl_first"),
        )
    };
    fl.engine_mut().add_fact(p, vec![a, b]).map(|_| ())
}

/// Declares method `m` functional: each object has at most one value.
pub fn require_functional(fl: &mut FLogic, method: &str) -> Result<(), DatalogError> {
    let (m, p) = {
        let e = fl.engine_mut();
        (e.constant(method), e.sym("fd_method"))
    };
    fl.engine_mut().add_fact(p, vec![m]).map(|_| ())
}

#[cfg(test)]
mod tests {
    use crate::cm::{ConceptualModel, GcmBase};
    use crate::constraints::Cardinality;
    use crate::decl::GcmValue;

    fn id(s: &str) -> GcmValue {
        GcmValue::Id(s.into())
    }

    /// Example 2 applied to `::` and the meta-class `class`: the subclass
    /// relation of a well-formed hierarchy is a partial order, so no
    /// witnesses appear.
    #[test]
    fn subclass_is_partial_order_on_clean_hierarchy() {
        let mut base = GcmBase::new();
        base.apply(
            &ConceptualModel::new("S")
                .subclass("purkinje_cell", "spiny_neuron")
                .subclass("spiny_neuron", "neuron"),
        )
        .unwrap();
        base.require_partial_order("class", "isa").unwrap();
        let m = base.run().unwrap();
        assert!(base.witnesses(&m).is_empty(), "{:?}", base.witnesses(&m));
    }

    /// A subclass cycle (a :: b, b :: a with a ≠ b) violates antisymmetry
    /// and produces `was` witnesses.
    #[test]
    fn subclass_cycle_caught_by_antisymmetry() {
        let mut base = GcmBase::new();
        base.apply(
            &ConceptualModel::new("S")
                .subclass("a", "b")
                .subclass("b", "a"),
        )
        .unwrap();
        base.require_partial_order("class", "isa").unwrap();
        let m = base.run().unwrap();
        let ws = base.witnesses(&m);
        assert!(
            ws.iter().any(|w| w.starts_with("was(")),
            "expected antisymmetry witness, got {ws:?}"
        );
    }

    /// A user relation that is missing transitive edges produces `wtc`
    /// witnesses; missing reflexive edges produce `wrc`.
    #[test]
    fn user_relation_partial_order_violations() {
        let mut base = GcmBase::new();
        let cm = ConceptualModel::new("S")
            .instance("x", "node")
            .instance("y", "node")
            .instance("z", "node")
            .relation("leq", &[("lo", "node"), ("hi", "node")])
            .relation_inst("leq", &[("lo", id("x")), ("hi", id("y"))])
            .relation_inst("leq", &[("lo", id("y")), ("hi", id("z"))]);
        base.apply(&cm).unwrap();
        base.require_partial_order("node", "leq").unwrap();
        let m = base.run().unwrap();
        let ws = base.witnesses(&m);
        assert!(ws.iter().any(|w| w.starts_with("wrc(")), "{ws:?}");
        assert!(ws.iter().any(|w| w.starts_with("wtc(")), "{ws:?}");
    }

    /// Example 3 verbatim: has(neuron, axon) with "an axon is contained
    /// in exactly one neuron" and "a neuron has at most 2 axons".
    #[test]
    fn example3_cardinalities() {
        let mut base = GcmBase::new();
        let cm = ConceptualModel::new("S")
            .relation("has", &[("neuron", "neuron"), ("axon", "axon")])
            // n1 has 3 axons (violates ≤2); ax_shared is in two neurons
            // (violates exactly-1).
            .relation_inst("has", &[("neuron", id("n1")), ("axon", id("ax1"))])
            .relation_inst("has", &[("neuron", id("n1")), ("axon", id("ax2"))])
            .relation_inst("has", &[("neuron", id("n1")), ("axon", id("ax3"))])
            .relation_inst("has", &[("neuron", id("n2")), ("axon", id("ax_shared"))])
            .relation_inst("has", &[("neuron", id("n1")), ("axon", id("ax_shared"))]);
        base.apply(&cm).unwrap();
        base.require_cardinality("has", Cardinality::FirstExact(1))
            .unwrap();
        base.require_cardinality("has", Cardinality::SecondAtMost(2))
            .unwrap();
        let m = base.run().unwrap();
        let ws = base.witnesses(&m);
        assert!(
            ws.iter()
                .any(|w| w.starts_with("w_card_first(has,ax_shared,2)")),
            "{ws:?}"
        );
        assert!(
            ws.iter()
                .any(|w| w.starts_with("w_card_second_max(has,n1,")),
            "{ws:?}"
        );
    }

    #[test]
    fn key_constraint() {
        let mut base = GcmBase::new();
        base.apply(
            &ConceptualModel::new("S")
                .relation("located", &[("obj", "thing"), ("place", "region")])
                .relation_inst("located", &[("obj", id("o1")), ("place", id("p1"))])
                .relation_inst("located", &[("obj", id("o1")), ("place", id("p2"))])
                .relation_inst("located", &[("obj", id("o2")), ("place", id("p1"))]),
        )
        .unwrap();
        crate::constraints::require_key(base.flogic_mut(), "located").unwrap();
        let m = base.run().unwrap();
        let ws = base.witnesses(&m);
        // o1 maps to two places: two symmetric witnesses.
        assert_eq!(ws.iter().filter(|w| w.starts_with("w_key(")).count(), 2);
        assert!(ws.iter().all(|w| w.contains("o1")));
    }

    #[test]
    fn inclusion_dependency() {
        let mut base = GcmBase::new();
        base.apply(
            &ConceptualModel::new("S")
                .relation("emp", &[("who", "person"), ("dept", "dept")])
                .relation("person_rec", &[("who", "person"), ("age", "int")])
                .relation_inst("emp", &[("who", id("alice")), ("dept", id("d1"))])
                .relation_inst("emp", &[("who", id("ghost")), ("dept", id("d1"))])
                .relation_inst(
                    "person_rec",
                    &[("who", id("alice")), ("age", GcmValue::Int(30))],
                ),
        )
        .unwrap();
        crate::constraints::require_inclusion(base.flogic_mut(), "emp", "person_rec").unwrap();
        let m = base.run().unwrap();
        let ws = base.witnesses(&m);
        assert_eq!(ws.len(), 1);
        assert!(ws[0].contains("ghost"), "{ws:?}");
    }

    #[test]
    fn functional_method() {
        let mut base = GcmBase::new();
        base.apply(
            &ConceptualModel::new("S")
                .method_inst("n1", "soma_size", GcmValue::Int(10))
                .method_inst("n1", "soma_size", GcmValue::Int(12))
                .method_inst("n2", "soma_size", GcmValue::Int(9)),
        )
        .unwrap();
        crate::constraints::require_functional(base.flogic_mut(), "soma_size").unwrap();
        let m = base.run().unwrap();
        let ws = base.witnesses(&m);
        assert_eq!(ws.iter().filter(|w| w.starts_with("w_fd(")).count(), 2);
        assert!(ws.iter().all(|w| w.contains("n1")));
    }

    /// A conforming population yields no cardinality witnesses.
    #[test]
    fn conforming_cardinalities_silent() {
        let mut base = GcmBase::new();
        let cm = ConceptualModel::new("S")
            .relation("has", &[("neuron", "neuron"), ("axon", "axon")])
            .relation_inst("has", &[("neuron", id("n1")), ("axon", id("ax1"))])
            .relation_inst("has", &[("neuron", id("n2")), ("axon", id("ax2"))]);
        base.apply(&cm).unwrap();
        base.require_cardinality("has", Cardinality::FirstExact(1))
            .unwrap();
        base.require_cardinality("has", Cardinality::SecondAtMost(2))
            .unwrap();
        let m = base.run().unwrap();
        assert!(base.witnesses(&m).is_empty());
    }
}
