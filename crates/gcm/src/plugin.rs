//! The CM plug-in mechanism (§2).
//!
//! The mediator is independent of a source's choice of CM formalism: a
//! source exports its conceptual model in any XML dialect for which a
//! *translator* — an XML-encoded [`Transform`] mapping that dialect into
//! the GCM wire format — has been registered. The mediator then needs
//! only "a single GCM engine for handling arbitrary CMs".
//!
//! Built-in translators are provided for three simulated formalisms
//! (stand-ins for the paper's (E)ER, UML/XMI, and RDF Schema):
//!
//! * `"er"` — entity-relationship diagrams in XML;
//! * `"uxf"` — a UML-class-diagram exchange format (after \[SY98\]);
//! * `"rdfs"` — an RDF-Schema-like triple dialect.
//!
//! The `"gcm"` formalism is the identity: documents already in the wire
//! format are decoded directly.

use crate::cm::ConceptualModel;
use crate::error::{GcmError, Result};
use crate::xml_codec;
use kind_xml::{Element, Transform};
use std::collections::HashMap;

/// A UXF-2-GCM-style translator for entity-relationship exports.
pub const ER_PLUGIN: &str = r#"
<transform output="gcm">
  <rule match="//entity">
    <class name="{@name}"/>
    <let name="cls" select="@name"/>
    <for-each select="attribute">
      <method class="{$cls}" name="{@name}" result="{@domain}"/>
    </for-each>
  </rule>
  <rule match="//isa">
    <subclass sub="{@sub}" sup="{@sup}"/>
  </rule>
  <rule match="//relationship">
    <relation name="{@name}">
      <for-each select="participant">
        <role name="{@role}" class="{@entity}"/>
      </for-each>
    </relation>
  </rule>
  <rule match="//entity-instance">
    <instance obj="{@id}" class="{@entity}"/>
    <let name="obj" select="@id"/>
    <for-each select="value">
      <methodinst obj="{$obj}" method="{@attribute}" str="{@val}"/>
    </for-each>
  </rule>
  <rule match="//link">
    <relationinst name="{@relationship}">
      <for-each select="end">
        <value role="{@role}" id="{@ref}"/>
      </for-each>
    </relationinst>
  </rule>
</transform>
"#;

/// UML-class-diagram exchange (UXF-like, after \[SY98\]).
pub const UXF_PLUGIN: &str = r#"
<transform output="gcm">
  <rule match="//class">
    <class name="{@name}"/>
    <let name="cls" select="@name"/>
    <for-each select="inherits">
      <subclass sub="{$cls}" sup="{@from}"/>
    </for-each>
    <for-each select="attribute">
      <method class="{$cls}" name="{@name}" result="{@type}"/>
    </for-each>
    <for-each select="operation">
      <method class="{$cls}" name="{@name}" result="{@returns}"/>
    </for-each>
  </rule>
  <rule match="//association">
    <relation name="{@name}">
      <for-each select="end">
        <role name="{@role}" class="{@class}"/>
      </for-each>
    </relation>
  </rule>
  <rule match="//object">
    <instance obj="{@id}" class="{@class}"/>
  </rule>
</transform>
"#;

/// RDF-Schema-like dialect: classes, subClassOf, properties with
/// domain/range, typed resources, and literal/resource triples.
pub const RDFS_PLUGIN: &str = r#"
<transform output="gcm">
  <rule match="//rdfs:Class">
    <class name="{@rdf:ID}"/>
    <let name="cls" select="@rdf:ID"/>
    <for-each select="rdfs:subClassOf">
      <subclass sub="{$cls}" sup="{@rdf:resource}"/>
    </for-each>
  </rule>
  <rule match="//rdf:Property">
    <method class="{rdfs:domain/@rdf:resource}" name="{@rdf:ID}"
            result="{rdfs:range/@rdf:resource}"/>
  </rule>
  <rule match="//rdf:Description">
    <instance obj="{@rdf:ID}" class="{rdf:type/@rdf:resource}"/>
  </rule>
  <rule match="//triple">
    <methodinst obj="{@subject}" method="{@predicate}" str="{@object}"/>
  </rule>
</transform>
"#;

/// The mediator's registry of CM-to-GCM translators.
#[derive(Debug, Clone)]
pub struct PluginRegistry {
    plugins: HashMap<String, Transform>,
}

impl Default for PluginRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl PluginRegistry {
    /// An empty registry (only the identity `"gcm"` formalism works).
    pub fn empty() -> Self {
        PluginRegistry {
            plugins: HashMap::new(),
        }
    }

    /// A registry with the built-in `er`, `uxf`, and `rdfs` translators.
    pub fn with_builtins() -> Self {
        let mut r = Self::empty();
        r.register("er", ER_PLUGIN).expect("builtin er plugin");
        r.register("uxf", UXF_PLUGIN).expect("builtin uxf plugin");
        r.register("rdfs", RDFS_PLUGIN)
            .expect("builtin rdfs plugin");
        r
    }

    /// Registers a translator for `formalism` from its XML text — the
    /// paper's "source sends the translator once to the mediator" flow.
    pub fn register(&mut self, formalism: &str, transform_xml: &str) -> Result<()> {
        let t = Transform::parse(transform_xml)?;
        self.plugins.insert(formalism.to_string(), t);
        Ok(())
    }

    /// The registered formalism names (excluding the implicit `gcm`).
    pub fn formalisms(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.plugins.keys().map(String::as_str).collect();
        v.sort();
        v
    }

    /// Translates a CM document in `formalism` into a decoded
    /// [`ConceptualModel`]. The `"gcm"` formalism decodes directly.
    pub fn translate(&self, formalism: &str, doc: &Element) -> Result<ConceptualModel> {
        if formalism == "gcm" {
            return xml_codec::decode(doc);
        }
        let t = self
            .plugins
            .get(formalism)
            .ok_or_else(|| GcmError::UnknownFormalism {
                name: formalism.to_string(),
            })?;
        let gcm_doc = t.apply(doc);
        let mut cm = xml_codec::decode(&gcm_doc)?;
        if let Some(name) = doc.attr("name") {
            cm.name = name.to_string();
        }
        Ok(cm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cm::GcmBase;
    use crate::decl::GcmDecl;

    #[test]
    fn er_plugin_translates_schema_and_data() {
        let reg = PluginRegistry::with_builtins();
        let doc = kind_xml::parse(
            r#"<er name="SYNAPSE">
                 <entity name="spine">
                   <attribute name="length" domain="float"/>
                 </entity>
                 <isa sub="spine" sup="compartment"/>
                 <relationship name="has">
                   <participant role="whole" entity="dendrite"/>
                   <participant role="part" entity="spine"/>
                 </relationship>
                 <entity-instance id="s1" entity="spine"/>
                 <link relationship="has">
                   <end role="whole" ref="d1"/>
                   <end role="part" ref="s1"/>
                 </link>
               </er>"#,
        )
        .unwrap();
        let cm = reg.translate("er", &doc.root).unwrap();
        assert_eq!(cm.name, "SYNAPSE");
        assert!(cm.decls.iter().any(
            |d| matches!(d, GcmDecl::Relation { name, roles } if name == "has" && roles.len() == 2)
        ));
        let mut base = GcmBase::new();
        base.apply(&cm).unwrap();
        let m = base.run().unwrap();
        assert!(base.flogic().is_instance(&m, "s1", "compartment"));
        let mut e = base.flogic().engine().clone();
        assert_eq!(e.query_model(&m, "has(d1, s1)").unwrap().len(), 1);
    }

    #[test]
    fn uxf_plugin_translates_uml_classes() {
        let reg = PluginRegistry::with_builtins();
        let doc = kind_xml::parse(
            r#"<uxf name="NCMIR">
                 <class name="neuron">
                   <attribute name="soma_size" type="float"/>
                 </class>
                 <class name="purkinje_cell">
                   <inherits from="neuron"/>
                 </class>
                 <association name="expresses">
                   <end role="cell" class="neuron"/>
                   <end role="protein" class="protein"/>
                 </association>
                 <object id="p1" class="purkinje_cell"/>
               </uxf>"#,
        )
        .unwrap();
        let cm = reg.translate("uxf", &doc.root).unwrap();
        let mut base = GcmBase::new();
        base.apply(&cm).unwrap();
        let m = base.run().unwrap();
        assert!(base.flogic().is_instance(&m, "p1", "neuron"));
        // Signature inherited down to purkinje_cell.
        let mut e = base.flogic().engine().clone();
        assert_eq!(
            e.query_model(&m, "meth(purkinje_cell, soma_size, float)")
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn rdfs_plugin_translates_triples() {
        let reg = PluginRegistry::with_builtins();
        let doc = kind_xml::parse(
            r#"<rdf name="SENSELAB">
                 <rdfs:Class rdf:ID="neuron"/>
                 <rdfs:Class rdf:ID="purkinje_cell">
                   <rdfs:subClassOf rdf:resource="neuron"/>
                 </rdfs:Class>
                 <rdf:Property rdf:ID="organism">
                   <rdfs:domain rdf:resource="neuron"/>
                   <rdfs:range rdf:resource="literal"/>
                 </rdf:Property>
                 <rdf:Description rdf:ID="p9">
                   <rdf:type rdf:resource="purkinje_cell"/>
                 </rdf:Description>
                 <triple subject="p9" predicate="organism" object="rat"/>
               </rdf>"#,
        )
        .unwrap();
        let cm = reg.translate("rdfs", &doc.root).unwrap();
        let mut base = GcmBase::new();
        base.apply(&cm).unwrap();
        let m = base.run().unwrap();
        assert!(base.flogic().is_instance(&m, "p9", "neuron"));
        let vals = base.flogic().method_values(&m, "p9");
        assert!(vals.contains(&("organism".to_string(), "rat".to_string())));
    }

    #[test]
    fn gcm_identity_formalism() {
        let reg = PluginRegistry::empty();
        let doc = kind_xml::parse(r#"<gcm name="X"><instance obj="a" class="c"/></gcm>"#).unwrap();
        let cm = reg.translate("gcm", &doc.root).unwrap();
        assert_eq!(cm.decls.len(), 1);
    }

    #[test]
    fn unknown_formalism_rejected() {
        let reg = PluginRegistry::empty();
        let doc = kind_xml::parse("<x/>").unwrap();
        assert!(matches!(
            reg.translate("xmi", &doc.root),
            Err(GcmError::UnknownFormalism { .. })
        ));
    }

    #[test]
    fn custom_plugin_registration_over_the_wire() {
        // A brand-new formalism arrives as a transform document.
        let mut reg = PluginRegistry::empty();
        reg.register(
            "myfmt",
            r#"<transform output="gcm">
                 <rule match="//thing"><instance obj="{@id}" class="{@kind}"/></rule>
               </transform>"#,
        )
        .unwrap();
        let doc = kind_xml::parse(r#"<stuff><thing id="t1" kind="gizmo"/></stuff>"#).unwrap();
        let cm = reg.translate("myfmt", &doc.root).unwrap();
        assert_eq!(cm.decls.len(), 1);
        assert!(reg.formalisms().contains(&"myfmt"));
    }
}
