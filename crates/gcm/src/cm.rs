//! Conceptual models and the mediator-side GCM base.
//!
//! A [`ConceptualModel`] is what a wrapped source exports at registration
//! time: class schemas, relationship schemas, instances, and semantic
//! rules (paper §2, "The Mediator System at Work"). A [`GcmBase`] is the
//! mediator's populated GCM engine: it hosts any number of applied CMs
//! plus the integrity-constraint machinery of §3.

use crate::constraints;
use crate::decl::{GcmDecl, GcmValue};
use crate::error::{GcmError, Result};
use kind_datalog::{EvalOptions, Model, Term};
use kind_flogic::FLogic;
use std::collections::HashMap;

/// A named conceptual model: an ordered list of GCM declarations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConceptualModel {
    /// The model's name (usually the source name).
    pub name: String,
    /// Declarations in export order.
    pub decls: Vec<GcmDecl>,
}

impl ConceptualModel {
    /// Creates an empty model.
    pub fn new(name: impl Into<String>) -> Self {
        ConceptualModel {
            name: name.into(),
            decls: Vec::new(),
        }
    }

    /// Appends a declaration.
    pub fn push(&mut self, decl: GcmDecl) -> &mut Self {
        self.decls.push(decl);
        self
    }

    /// Builder: `obj : class`.
    pub fn instance(mut self, obj: &str, class: &str) -> Self {
        self.decls.push(GcmDecl::Instance {
            obj: obj.into(),
            class: class.into(),
        });
        self
    }

    /// Builder: `sub :: sup`.
    pub fn subclass(mut self, sub: &str, sup: &str) -> Self {
        self.decls.push(GcmDecl::Subclass {
            sub: sub.into(),
            sup: sup.into(),
        });
        self
    }

    /// Builder: method signature.
    pub fn method(mut self, class: &str, method: &str, result: &str) -> Self {
        self.decls.push(GcmDecl::Method {
            class: class.into(),
            method: method.into(),
            result: result.into(),
        });
        self
    }

    /// Builder: instance-level method value.
    pub fn method_inst(mut self, obj: &str, method: &str, value: GcmValue) -> Self {
        self.decls.push(GcmDecl::MethodInst {
            obj: obj.into(),
            method: method.into(),
            value,
        });
        self
    }

    /// Builder: relation schema.
    pub fn relation(mut self, name: &str, roles: &[(&str, &str)]) -> Self {
        self.decls.push(GcmDecl::Relation {
            name: name.into(),
            roles: roles
                .iter()
                .map(|(a, c)| ((*a).to_string(), (*c).to_string()))
                .collect(),
        });
        self
    }

    /// Builder: relation tuple.
    pub fn relation_inst(mut self, name: &str, values: &[(&str, GcmValue)]) -> Self {
        self.decls.push(GcmDecl::RelationInst {
            name: name.into(),
            values: values
                .iter()
                .map(|(a, v)| ((*a).to_string(), v.clone()))
                .collect(),
        });
        self
    }

    /// Builder: a semantic rule in FL syntax.
    pub fn rule(mut self, text: &str) -> Self {
        self.decls.push(GcmDecl::Rule { text: text.into() });
        self
    }

    /// Number of instance-level declarations (objects, method values,
    /// tuples) — the "data size" of the export.
    pub fn instance_count(&self) -> usize {
        self.decls
            .iter()
            .filter(|d| {
                matches!(
                    d,
                    GcmDecl::Instance { .. }
                        | GcmDecl::MethodInst { .. }
                        | GcmDecl::RelationInst { .. }
                )
            })
            .count()
    }
}

/// The mediator's GCM engine: F-logic knowledge base + relation schemas +
/// the integrity-constraint rule library.
#[derive(Debug, Clone)]
pub struct GcmBase {
    fl: FLogic,
    /// Relation name → role list (role, class) in positional order.
    relations: HashMap<String, Vec<(String, String)>>,
}

impl Default for GcmBase {
    fn default() -> Self {
        Self::new()
    }
}

impl GcmBase {
    /// Creates a base with the FL core axioms, the meta-level reflection
    /// axioms (classes are instances of the meta-class `class`; `::` is
    /// reflected as the reified relation `isa`), and the constraint rule
    /// library installed.
    pub fn new() -> Self {
        let mut fl = FLogic::new();
        fl.load_datalog(
            "% meta-level reflection (Example 2: R := `::`, C := `class`)
             inst(C, class) :- class(C).
             relinst(isa, X, Y) :- sub(X, Y).",
        )
        .expect("meta axioms well-formed");
        fl.load(constraints::CONSTRAINT_RULES)
            .expect("constraint rules well-formed");
        GcmBase {
            fl,
            relations: HashMap::new(),
        }
    }

    /// The underlying F-logic knowledge base.
    pub fn flogic(&self) -> &FLogic {
        &self.fl
    }

    /// Mutable access to the F-logic knowledge base.
    pub fn flogic_mut(&mut self) -> &mut FLogic {
        &mut self.fl
    }

    /// The declared roles of `relation`, if known.
    pub fn relation_roles(&self, relation: &str) -> Option<&[(String, String)]> {
        self.relations.get(relation).map(Vec::as_slice)
    }

    fn value_term(&mut self, v: &GcmValue) -> Term {
        match v {
            GcmValue::Id(s) | GcmValue::Str(s) => self.fl.engine_mut().constant(s),
            GcmValue::Int(i) => Term::Int(*i),
        }
    }

    /// Retracts one **instance-level** declaration — the delete plane's
    /// mirror of [`Self::apply_decl`]: `Instance` removes the `inst`
    /// fact, `MethodInst` the `mi` fact; returns whether the fact was
    /// present. Schema-level declarations (classes, subclass edges,
    /// method signatures, relations) are not retractable — they return
    /// `false` untouched, like a fact that was never there.
    pub fn retract_decl(&mut self, decl: &GcmDecl) -> bool {
        match decl {
            GcmDecl::Instance { obj, class } => self.fl.retract_instance(obj, class),
            GcmDecl::MethodInst { obj, method, value } => {
                let o = self.fl.engine_mut().constant(obj);
                let v = self.value_term(value);
                self.fl.retract_method(o, method, v)
            }
            _ => false,
        }
    }

    /// Applies one declaration.
    pub fn apply_decl(&mut self, decl: &GcmDecl) -> Result<()> {
        match decl {
            GcmDecl::Instance { obj, class } => {
                self.fl.assert_instance(obj, class)?;
                self.fl.declare_class(class)?;
            }
            GcmDecl::Subclass { sub, sup } => {
                self.fl.declare_subclass(sub, sup)?;
                self.fl.declare_class(sub)?;
                self.fl.declare_class(sup)?;
            }
            GcmDecl::Method {
                class,
                method,
                result,
            } => {
                let preds = *self.fl.preds();
                let (c, m, r) = {
                    let e = self.fl.engine_mut();
                    (e.constant(class), e.constant(method), e.constant(result))
                };
                self.fl.engine_mut().add_fact(preds.meth, vec![c, m, r])?;
                self.fl.declare_class(class)?;
                self.fl.declare_class(result)?;
            }
            GcmDecl::MethodInst { obj, method, value } => {
                let o = self.fl.engine_mut().constant(obj);
                let v = self.value_term(value);
                self.fl.assert_method(o, method, v)?;
            }
            GcmDecl::Relation { name, roles } => {
                self.relations.insert(name.clone(), roles.clone());
                // Schema facts: relsch(name, pos, role, class); rel(name, arity).
                let e = self.fl.engine_mut();
                let relsch = e.sym("relsch");
                let rel = e.sym("rel");
                let n = e.constant(name);
                let arity = roles.len() as i64;
                e.add_fact(rel, vec![n.clone(), Term::Int(arity)])?;
                for (i, (role, class)) in roles.iter().enumerate() {
                    let r = e.constant(role);
                    let c = e.constant(class);
                    e.add_fact(relsch, vec![n.clone(), Term::Int(i as i64), r, c])?;
                }
                for (_, class) in roles {
                    self.fl.declare_class(class)?;
                }
            }
            GcmDecl::RelationInst { name, values } => {
                let roles = self
                    .relations
                    .get(name)
                    .ok_or_else(|| GcmError::UnknownRelation { name: name.clone() })?
                    .clone();
                if values.len() != roles.len() {
                    return Err(GcmError::RoleMismatch {
                        relation: name.clone(),
                        role: format!("expected {} roles, got {}", roles.len(), values.len()),
                    });
                }
                let mut positional: Vec<Option<Term>> = vec![None; roles.len()];
                for (role, v) in values {
                    let pos = roles.iter().position(|(a, _)| a == role).ok_or_else(|| {
                        GcmError::RoleMismatch {
                            relation: name.clone(),
                            role: role.clone(),
                        }
                    })?;
                    let t = self.value_term(v);
                    positional[pos] = Some(t);
                }
                let args: Vec<Term> = positional
                    .into_iter()
                    .map(|t| t.expect("all positions filled by role check"))
                    .collect();
                let e = self.fl.engine_mut();
                let p = e.sym(name);
                e.add_fact(p, args.clone())?;
                // Binary relations are mirrored into the reified store so
                // meta-level constraints (Example 2) can quantify over R.
                if args.len() == 2 {
                    let relinst = e.sym("relinst");
                    let n = e.constant(name);
                    e.add_fact(relinst, vec![n, args[0].clone(), args[1].clone()])?;
                }
            }
            GcmDecl::Rule { text } => {
                self.fl.load(text)?;
            }
        }
        Ok(())
    }

    /// Applies a whole conceptual model.
    pub fn apply(&mut self, cm: &ConceptualModel) -> Result<()> {
        for d in &cm.decls {
            self.apply_decl(d)?;
        }
        Ok(())
    }

    /// Declares that `relation` must be a partial order on `class`
    /// (Example 2). Violations produce `wrc`/`wtc`/`was` witnesses in `ic`.
    pub fn require_partial_order(&mut self, class: &str, relation: &str) -> Result<()> {
        constraints::require_partial_order(&mut self.fl, class, relation).map_err(Into::into)
    }

    /// Adds a cardinality constraint (Example 3) on a binary relation.
    pub fn require_cardinality(
        &mut self,
        relation: &str,
        card: constraints::Cardinality,
    ) -> Result<()> {
        constraints::require_cardinality(&mut self.fl, relation, card).map_err(Into::into)
    }

    /// Evaluates the base.
    pub fn run(&self) -> Result<Model> {
        self.fl.run().map_err(Into::into)
    }

    /// Evaluates with explicit options.
    pub fn run_with(&self, opts: &EvalOptions) -> Result<Model> {
        self.fl.run_with(opts).map_err(Into::into)
    }

    /// The inconsistency witnesses in `model` (empty = consistent).
    pub fn witnesses(&self, model: &Model) -> Vec<String> {
        self.fl.inconsistency_witnesses(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn neuro_cm() -> ConceptualModel {
        ConceptualModel::new("NCMIR")
            .subclass("purkinje_cell", "neuron")
            .method("neuron", "soma_size", "integer")
            .instance("p1", "purkinje_cell")
            .method_inst("p1", "soma_size", GcmValue::Int(30))
            .relation("has", &[("whole", "neuron"), ("part", "compartment")])
            .relation_inst(
                "has",
                &[
                    ("whole", GcmValue::Id("p1".into())),
                    ("part", GcmValue::Id("d1".into())),
                ],
            )
    }

    #[test]
    fn apply_and_query_cm() {
        let mut base = GcmBase::new();
        base.apply(&neuro_cm()).unwrap();
        let m = base.run().unwrap();
        assert!(base.flogic().is_instance(&m, "p1", "neuron"));
        let vals = base.flogic().method_values(&m, "p1");
        assert!(vals.contains(&("soma_size".into(), "30".into())));
    }

    #[test]
    fn relation_roles_resolved_by_name_any_order() {
        let mut base = GcmBase::new();
        let cm = ConceptualModel::new("S")
            .relation("proj", &[("from", "neuron"), ("to", "region")])
            .relation_inst(
                "proj",
                &[
                    ("to", GcmValue::Id("gpe".into())),
                    ("from", GcmValue::Id("m1".into())),
                ],
            );
        base.apply(&cm).unwrap();
        let m = base.run().unwrap();
        let mut e = base.flogic().engine().clone();
        let sols = e.query_model(&m, "proj(m1, gpe)").unwrap();
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn unknown_relation_rejected() {
        let mut base = GcmBase::new();
        let cm = ConceptualModel::new("S").relation_inst("nope", &[]);
        assert!(matches!(
            base.apply(&cm),
            Err(GcmError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn role_mismatch_rejected() {
        let mut base = GcmBase::new();
        let cm = ConceptualModel::new("S")
            .relation("r", &[("a", "c1"), ("b", "c2")])
            .relation_inst(
                "r",
                &[
                    ("a", GcmValue::Id("x".into())),
                    ("z", GcmValue::Id("y".into())),
                ],
            );
        assert!(matches!(
            base.apply(&cm),
            Err(GcmError::RoleMismatch { .. })
        ));
    }

    #[test]
    fn semantic_rules_define_virtual_classes() {
        // §2: semantic rules "for defining virtual classes and
        // relationships".
        let mut base = GcmBase::new();
        let cm = ConceptualModel::new("S")
            .instance("n1", "neuron")
            .method_inst("n1", "size", GcmValue::Int(50))
            .rule("X : big_neuron :- X : neuron, X[size -> S], S > 10.");
        base.apply(&cm).unwrap();
        let m = base.run().unwrap();
        assert!(base.flogic().is_instance(&m, "n1", "big_neuron"));
    }

    #[test]
    fn meta_reflection_classes_are_instances_of_class() {
        let mut base = GcmBase::new();
        base.apply(&ConceptualModel::new("S").subclass("axon", "compartment"))
            .unwrap();
        let m = base.run().unwrap();
        assert!(base.flogic().is_instance(&m, "axon", "class"));
        // `::` reflected into relinst(isa, _, _).
        let mut e = base.flogic().engine().clone();
        assert!(!e
            .query_model(&m, "relinst(isa, axon, compartment)")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn instance_count_counts_data_not_schema() {
        let cm = neuro_cm();
        assert_eq!(cm.instance_count(), 3);
    }
}
