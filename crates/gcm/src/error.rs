//! Error type for the GCM layer.

use std::fmt;

/// Errors raised while building, decoding, or evaluating conceptual
/// models.
#[derive(Debug)]
pub enum GcmError {
    /// An error bubbled up from the deductive engine.
    Datalog(kind_datalog::DatalogError),
    /// An error from the XML substrate.
    Xml(kind_xml::XmlError),
    /// A relation instance refers to a relation that was never declared.
    UnknownRelation {
        /// Relation name.
        name: String,
    },
    /// A relation instance uses a role the relation does not declare, or
    /// misses one.
    RoleMismatch {
        /// Relation name.
        relation: String,
        /// Offending role.
        role: String,
    },
    /// Malformed GCM XML.
    Malformed {
        /// Description.
        message: String,
    },
    /// A plug-in for the named CM formalism is not registered.
    UnknownFormalism {
        /// Formalism name.
        name: String,
    },
}

impl fmt::Display for GcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GcmError::Datalog(e) => write!(f, "datalog: {e}"),
            GcmError::Xml(e) => write!(f, "xml: {e}"),
            GcmError::UnknownRelation { name } => write!(f, "unknown relation `{name}`"),
            GcmError::RoleMismatch { relation, role } => {
                write!(
                    f,
                    "relation `{relation}` has no role `{role}` (or a role is missing)"
                )
            }
            GcmError::Malformed { message } => write!(f, "malformed GCM document: {message}"),
            GcmError::UnknownFormalism { name } => {
                write!(f, "no CM plug-in registered for formalism `{name}`")
            }
        }
    }
}

impl std::error::Error for GcmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GcmError::Datalog(e) => Some(e),
            GcmError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kind_datalog::DatalogError> for GcmError {
    fn from(e: kind_datalog::DatalogError) -> Self {
        GcmError::Datalog(e)
    }
}

impl From<kind_xml::XmlError> for GcmError {
    fn from(e: kind_xml::XmlError) -> Self {
        GcmError::Xml(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, GcmError>;
