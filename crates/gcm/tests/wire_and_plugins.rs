//! Cross-module tests: the GCM wire format under adversarial inputs, and
//! plug-in translators end to end.

use kind_gcm::{
    xml_codec, Cardinality, ConceptualModel, GcmBase, GcmDecl, GcmValue, PluginRegistry,
};

#[test]
fn wire_format_rejects_junk_values() {
    for bad in [
        r#"<gcm><methodinst obj="o" method="m" int="notanumber"/></gcm>"#,
        r#"<gcm><methodinst obj="o" method="m"/></gcm>"#,
        r#"<gcm><relation name="r"><role name="a"/></relation></gcm>"#,
        r#"<gcm><relationinst name="r"><value role="a"/></relationinst></gcm>"#,
        r#"<gcm><subclass sub="a"/></gcm>"#,
    ] {
        let doc = kind_xml::parse(bad).unwrap();
        assert!(
            xml_codec::decode(&doc.root).is_err(),
            "should reject: {bad}"
        );
    }
}

#[test]
fn empty_cm_roundtrips() {
    let cm = ConceptualModel::new("EMPTY");
    let wire = kind_xml::to_string(&xml_codec::encode(&cm));
    let decoded = xml_codec::decode(&kind_xml::parse(&wire).unwrap().root).unwrap();
    assert_eq!(cm, decoded);
}

#[test]
fn big_cm_roundtrips_and_applies() {
    let mut cm = ConceptualModel::new("BIG");
    for i in 0..200 {
        cm.push(GcmDecl::Instance {
            obj: format!("o{i}"),
            class: format!("c{}", i % 10),
        });
        cm.push(GcmDecl::MethodInst {
            obj: format!("o{i}"),
            method: "v".into(),
            value: GcmValue::Int(i),
        });
    }
    for i in 0..9 {
        cm.push(GcmDecl::Subclass {
            sub: format!("c{i}"),
            sup: format!("c{}", i + 1),
        });
    }
    let wire = kind_xml::to_string(&xml_codec::encode(&cm));
    let decoded = xml_codec::decode(&kind_xml::parse(&wire).unwrap().root).unwrap();
    assert_eq!(cm.decls.len(), decoded.decls.len());
    let mut base = GcmBase::new();
    base.apply(&decoded).unwrap();
    let m = base.run().unwrap();
    // Everything propagates to c9 through the chain.
    assert_eq!(base.flogic().instances_of(&m, "c9").len(), 200);
}

#[test]
fn plugin_with_let_bindings_over_the_wire() {
    let mut reg = PluginRegistry::empty();
    // A formalism where the class context is needed two levels deep.
    reg.register(
        "nested",
        r#"<transform output="gcm">
             <rule match="//entity">
               <let name="cls" select="@name"/>
               <for-each select="group">
                 <for-each select="field">
                   <method class="{$cls}" name="{@name}" result="{@type}"/>
                 </for-each>
               </for-each>
             </rule>
           </transform>"#,
    )
    .unwrap();
    let doc = kind_xml::parse(
        r#"<m><entity name="cell">
             <group><field name="size" type="int"/><field name="age" type="int"/></group>
           </entity></m>"#,
    )
    .unwrap();
    let cm = reg.translate("nested", &doc.root).unwrap();
    let methods: Vec<_> = cm
        .decls
        .iter()
        .filter(|d| matches!(d, GcmDecl::Method { class, .. } if class == "cell"))
        .collect();
    assert_eq!(methods.len(), 2);
}

#[test]
fn malformed_plugin_transform_rejected_at_registration() {
    let mut reg = PluginRegistry::empty();
    assert!(reg.register("bad", "<notatransform/>").is_err());
    assert!(reg
        .register("bad", r#"<transform><rule match="[[["/></transform>"#)
        .is_err());
}

#[test]
fn plugin_translation_errors_surface_as_malformed() {
    let mut reg = PluginRegistry::empty();
    // The transform produces an element the GCM codec doesn't know.
    reg.register(
        "odd",
        r#"<transform output="gcm">
             <rule match="//x"><mystery/></rule>
           </transform>"#,
    )
    .unwrap();
    let doc = kind_xml::parse("<in><x/></in>").unwrap();
    assert!(reg.translate("odd", &doc.root).is_err());
}

#[test]
fn cardinality_boundaries() {
    fn base_with(tuples: &[(&str, &str)]) -> GcmBase {
        let mut base = GcmBase::new();
        let mut cm = ConceptualModel::new("S").relation("r", &[("a", "ca"), ("b", "cb")]);
        for (a, b) in tuples {
            cm = cm.relation_inst(
                "r",
                &[
                    ("a", GcmValue::Id((*a).into())),
                    ("b", GcmValue::Id((*b).into())),
                ],
            );
        }
        base.apply(&cm).unwrap();
        base
    }
    // Exactly at the max: silent.
    let mut b = base_with(&[("x", "y1"), ("x", "y2")]);
    b.require_cardinality("r", Cardinality::SecondAtMost(2))
        .unwrap();
    let m = b.run().unwrap();
    assert!(b.witnesses(&m).is_empty());
    // One over: witnessed.
    let mut b = base_with(&[("x", "y1"), ("x", "y2"), ("x", "y3")]);
    b.require_cardinality("r", Cardinality::SecondAtMost(2))
        .unwrap();
    let m = b.run().unwrap();
    assert_eq!(b.witnesses(&m).len(), 1);
    // Duplicate tuples count once (set semantics, as in the paper's
    // count of distinct values).
    let mut b = base_with(&[("x", "y1"), ("x", "y1"), ("x", "y1")]);
    b.require_cardinality("r", Cardinality::SecondAtMost(2))
        .unwrap();
    let m = b.run().unwrap();
    assert!(b.witnesses(&m).is_empty());
}

#[test]
fn rules_in_cms_can_reference_other_cms() {
    // Two CMs applied to one base: a rule in the second sees classes of
    // the first — the mediator's "everything in one GCM engine" property.
    let mut base = GcmBase::new();
    base.apply(&ConceptualModel::new("A").instance("x", "alpha"))
        .unwrap();
    base.apply(
        &ConceptualModel::new("B")
            .instance("y", "beta")
            .rule("Z : merged :- Z : alpha. Z : merged :- Z : beta."),
    )
    .unwrap();
    let m = base.run().unwrap();
    assert_eq!(base.flogic().instances_of(&m, "merged").len(), 2);
}
