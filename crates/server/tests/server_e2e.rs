//! End-to-end protocol tests: a real server on an ephemeral port, real
//! TCP clients. Timing-sensitive scheduling is made deterministic with
//! the `sleep` op (it occupies a worker for a known duration), never
//! with races.

use kind_server::client::Conn;
use kind_server::wire::{obj, Json};
use kind_server::{spawn_server, ServerConfig};
use kind_sources::ScenarioParams;

fn small_scenario() -> ScenarioParams {
    ScenarioParams {
        senselab_rows: 10,
        ncmir_rows: 15,
        synapse_rows: 10,
        noise_sources: 1,
        noise_rows: 5,
        ..ScenarioParams::default()
    }
}

fn small_server(workers: usize, queue_depth: usize) -> (kind_server::ServerHandle, String) {
    let handle = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_depth,
        default_budget_ms: 0,
        scenario: small_scenario(),
    })
    .expect("server starts");
    let addr = handle.addr().to_string();
    (handle, addr)
}

#[test]
fn serves_the_whole_protocol() {
    let (handle, addr) = small_server(2, 64);
    let mut conn = Conn::connect(&addr).unwrap();

    // ping: pinned to the seed epoch.
    let resp = conn.request(obj([("op", Json::str("ping"))])).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.get("epoch").and_then(Json::as_u64), Some(1));
    assert!(resp.get("queue_us").and_then(Json::as_u64).is_some());

    // query_fl: all NCMIR + noise protein rows.
    let resp = conn
        .request(obj([
            ("op", Json::str("query_fl")),
            ("pattern", Json::str("X : protein_amount")),
        ]))
        .unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.get("row_count").and_then(Json::as_u64), Some(20));

    // answer: rows + eval counters.
    let resp = conn
        .request(obj([
            ("op", Json::str("answer")),
            (
                "rule",
                Json::str(
                    r#"calcium_sites(P, L) :- X : protein_amount, X[protein_name -> P],
                       X[location -> L], X[ion_bound -> "calcium"]."#,
                ),
            ),
        ]))
        .unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    let rows = resp.get("rows").and_then(Json::as_arr).unwrap();
    assert!(!rows.is_empty(), "calcium sites exist in the scenario");
    let eval = resp.get("eval").expect("eval counters present");
    assert!(eval.get("derived").and_then(Json::as_u64).unwrap() > 0);

    // plan: the warm §5 replay.
    let resp = conn.request(obj([("op", Json::str("plan"))])).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    assert!(resp
        .get("distribution_rows")
        .and_then(Json::as_u64)
        .unwrap()
        .gt(&0));
    let report = resp.get("report").and_then(Json::as_str).unwrap();
    assert!(
        report.contains("complete"),
        "warm plan is complete: {report}"
    );

    // stats reflects the traffic so far.
    let resp = conn.request(obj([("op", Json::str("stats"))])).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    assert!(resp.get("served").and_then(Json::as_u64).unwrap() >= 4);
    assert_eq!(resp.get("shed").and_then(Json::as_u64), Some(0));

    // bad requests get typed errors, not dropped connections.
    let resp = conn.request(obj([("op", Json::str("nope"))])).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        resp.get("error").and_then(Json::as_str),
        Some("bad_request")
    );
    let resp = conn
        .request(obj([
            ("op", Json::str("answer")),
            ("rule", Json::str("p(X :- broken")),
        ]))
        .unwrap();
    assert_eq!(
        resp.get("error").and_then(Json::as_str),
        Some("query_error")
    );

    handle.shutdown();
}

#[test]
fn answers_match_an_inprocess_snapshot() {
    let (handle, addr) = small_server(2, 64);
    // Ground truth: the same scenario evaluated in-process.
    let mut m = kind_sources::build_scenario(&small_scenario());
    m.materialize_all().unwrap();
    let snap = m.snapshot().unwrap();
    let rule = r#"calcium_sites(P, L) :- X : protein_amount, X[protein_name -> P],
                  X[location -> L], X[ion_bound -> "calcium"]."#;
    let expected = snap.answer(rule).unwrap();

    let mut conn = Conn::connect(&addr).unwrap();
    let resp = conn
        .request(obj([
            ("op", Json::str("answer")),
            ("rule", Json::str(rule)),
        ]))
        .unwrap();
    let got: Vec<Vec<String>> = resp
        .get("rows")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|r| {
            r.as_arr()
                .unwrap()
                .iter()
                .map(|c| c.as_str().unwrap().to_string())
                .collect()
        })
        .collect();
    assert_eq!(got, expected, "served rows == in-process snapshot rows");
    handle.shutdown();
}

#[test]
fn sheds_overload_with_a_typed_response() {
    // One worker, queue depth 1: occupy the worker with a sleep, fill
    // the single queue slot, and everything after that must shed.
    let (handle, addr) = small_server(1, 1);
    let mut conn = Conn::connect(&addr).unwrap();
    let sleep_id = conn
        .send(obj([("op", Json::str("sleep")), ("ms", Json::int(400))]))
        .unwrap();
    // Wait until the worker picked the sleep up (queue drained), so the
    // next request deterministically occupies the queue slot.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let mut stats_conn = Conn::connect(&addr).unwrap();
    loop {
        let stats = stats_conn
            .request(obj([("op", Json::str("stats"))]))
            .unwrap();
        if stats.get("admitted").and_then(Json::as_u64) == Some(1) {
            // Admitted and (with a single worker) being slept on; the
            // queue is empty again.
            std::thread::sleep(std::time::Duration::from_millis(20));
            break;
        }
        assert!(std::time::Instant::now() < deadline, "sleep never admitted");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let queued_id = conn.send(obj([("op", Json::str("ping"))])).unwrap();
    let shed_id = conn.send(obj([("op", Json::str("ping"))])).unwrap();
    // The shed response arrives first (written at admission time by the
    // reader thread), then the sleep and the queued ping complete.
    let mut outcomes = std::collections::HashMap::new();
    for _ in 0..3 {
        let resp = conn.recv().unwrap();
        let id = resp.get("id").and_then(Json::as_u64).unwrap();
        let ok = resp.get("ok").and_then(Json::as_bool).unwrap();
        let err = resp.get("error").and_then(Json::as_str).map(str::to_string);
        outcomes.insert(id, (ok, err));
    }
    assert_eq!(outcomes[&sleep_id], (true, None), "sleep completed");
    assert_eq!(outcomes[&queued_id], (true, None), "queued ping served");
    assert_eq!(
        outcomes[&shed_id],
        (false, Some("overloaded".to_string())),
        "second ping shed with the typed overload response"
    );
    let stats = stats_conn
        .request(obj([("op", Json::str("stats"))]))
        .unwrap();
    assert_eq!(stats.get("shed").and_then(Json::as_u64), Some(1));
    handle.shutdown();
}

#[test]
fn queue_wait_counts_against_the_budget() {
    // One worker occupied by a 300ms sleep; a request with a 50ms budget
    // queued behind it must fail with deadline_exceeded at dequeue,
    // without being evaluated.
    let (handle, addr) = small_server(1, 8);
    let mut conn = Conn::connect(&addr).unwrap();
    let sleep_id = conn
        .send(obj([("op", Json::str("sleep")), ("ms", Json::int(300))]))
        .unwrap();
    let doomed_id = conn
        .send(obj([
            ("op", Json::str("query_fl")),
            ("pattern", Json::str("X : protein_amount")),
            ("budget_ms", Json::int(50)),
        ]))
        .unwrap();
    let mut by_id = std::collections::HashMap::new();
    for _ in 0..2 {
        let resp = conn.recv().unwrap();
        let id = resp.get("id").and_then(Json::as_u64).unwrap();
        by_id.insert(id, resp);
    }
    assert_eq!(
        by_id[&sleep_id].get("ok").and_then(Json::as_bool),
        Some(true)
    );
    let doomed = &by_id[&doomed_id];
    assert_eq!(doomed.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        doomed.get("error").and_then(Json::as_str),
        Some("deadline_exceeded")
    );
    let waited = doomed.get("queue_us").and_then(Json::as_u64).unwrap();
    assert!(waited >= 50_000, "queued past its budget ({waited}µs)");
    handle.shutdown();
}

#[test]
fn publish_while_serving_bumps_the_epoch_and_pins_inflight_reads() {
    let (handle, addr) = small_server(2, 64);
    let hub = handle.hub();
    let mut conn = Conn::connect(&addr).unwrap();

    let before = conn
        .request(obj([
            ("op", Json::str("query_fl")),
            ("pattern", Json::str("X : protein_amount")),
        ]))
        .unwrap();
    assert_eq!(before.get("epoch").and_then(Json::as_u64), Some(1));
    let rows_before = before.get("row_count").and_then(Json::as_u64).unwrap();

    // Publish 5 fresh NCMIR rows through the writer thread.
    let resp = conn
        .request(obj([("op", Json::str("publish")), ("rows", Json::int(5))]))
        .unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(resp.get("loaded").and_then(Json::as_u64), Some(5));
    assert_eq!(resp.get("epoch").and_then(Json::as_u64), Some(2));
    assert_eq!(hub.epoch(), 2, "hub observed the publish");

    // New requests pin the new epoch and see the new rows.
    let after = conn
        .request(obj([
            ("op", Json::str("query_fl")),
            ("pattern", Json::str("X : protein_amount")),
        ]))
        .unwrap();
    assert_eq!(after.get("epoch").and_then(Json::as_u64), Some(2));
    assert_eq!(
        after.get("row_count").and_then(Json::as_u64),
        Some(rows_before + 5)
    );
    handle.shutdown();
}

/// The serving-plane knob audit (the `ServerConfig` side of kind-core's
/// `knob_toggles_keep_warm_answer_warm`): worker count, queue depth, and
/// the default per-request budget are **pure serving knobs** — none of
/// them reaches the mediator, so across every setting the published
/// epoch stays 1 and the served rows are bit-identical. Only the shed
/// and deadline *outcomes* may differ, and an unconstrained budget must
/// not produce any.
#[test]
fn serving_knobs_never_invalidate_published_state() {
    let rule = r#"calcium_sites(P, L) :- X : protein_amount, X[protein_name -> P],
                  X[location -> L], X[ion_bound -> "calcium"]."#;
    let mut baseline: Option<Vec<String>> = None;
    for (workers, queue_depth, default_budget_ms) in
        [(1, 1, 0), (1, 64, 0), (4, 8, 0), (2, 64, 60_000)]
    {
        let handle = spawn_server(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            queue_depth,
            default_budget_ms,
            scenario: small_scenario(),
        })
        .expect("server starts");
        let mut conn = Conn::connect(&handle.addr().to_string()).unwrap();
        let resp = conn
            .request(obj([
                ("op", Json::str("answer")),
                ("rule", Json::str(rule)),
            ]))
            .unwrap();
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "serving knobs ({workers},{queue_depth},{default_budget_ms}) broke the answer"
        );
        assert_eq!(
            resp.get("epoch").and_then(Json::as_u64),
            Some(1),
            "serving knobs must not trigger extra publishes"
        );
        let rows: Vec<String> = resp
            .get("rows")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|r| r.to_string())
            .collect();
        match &baseline {
            None => baseline = Some(rows),
            Some(b) => assert_eq!(&rows, b, "rows diverged across serving knobs"),
        }
        handle.shutdown();
    }
}

#[test]
fn shutdown_op_unwinds_the_server() {
    let (handle, addr) = small_server(2, 16);
    let mut conn = Conn::connect(&addr).unwrap();
    let resp = conn.request(obj([("op", Json::str("shutdown"))])).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    assert!(handle.shutdown_requested());
    // Joins cleanly: workers, writer, watchdog, acceptor all exit.
    handle.shutdown();
    // The port is released; a fresh connect must fail (possibly after
    // the OS tears the listener down, hence the retry loop).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        match Conn::connect(&addr) {
            Err(_) => break,
            Ok(_) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "listener still accepting after shutdown"
                );
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
    }
}
