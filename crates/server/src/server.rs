//! The query server: N workers over the [`SnapshotHub`], a bounded
//! admission queue with load shedding, a single writer thread owning the
//! [`Mediator`], and a watchdog enforcing per-request wall budgets.
//!
//! ## Protocol
//!
//! One JSON object per line, in both directions. Requests:
//!
//! ```json
//! {"id": 1, "op": "ping"}
//! {"id": 2, "op": "query_fl", "pattern": "X : protein_amount"}
//! {"id": 3, "op": "answer", "rule": "p(X) :- ...", "budget_ms": 50}
//! {"id": 4, "op": "plan"}
//! {"id": 5, "op": "publish", "rows": 5}
//! {"id": 6, "op": "sleep", "ms": 100}
//! {"id": 7, "op": "stats"}
//! {"id": 8, "op": "shutdown"}
//! ```
//!
//! Every response echoes the request `id` (responses on one connection
//! may arrive out of order: sheds are written at admission time while
//! admitted requests answer later). Successful responses carry
//! `"ok": true`, the snapshot `epoch` the request was pinned to, the
//! admission-queue wait in `queue_us`, the evaluation time in `eval_us`,
//! and op-specific payload (`rows`, `eval` counters, `report` summary).
//! Failures carry `"ok": false` and a typed `"error"`:
//!
//! * `"overloaded"` — the admission queue was full; the request was
//!   **shed at arrival**, nothing was evaluated. Clients should back off
//!   and retry. This is the backpressure contract: the queue never grows
//!   beyond `queue_depth`, so admitted-request latency stays bounded no
//!   matter the offered load.
//! * `"deadline_exceeded"` — the request's budget elapsed before or
//!   during evaluation (queue wait counts against the budget, so a
//!   request that waited out its budget is failed without evaluating).
//! * `"bad_request"` / `"query_error"` — malformed input or an
//!   evaluation error; detail in `"detail"`.
//!
//! ## Threads
//!
//! * **acceptor** — nonblocking accept loop, spawns one reader per
//!   connection;
//! * **readers** (one per connection) — parse lines, answer `stats`
//!   inline, forward `publish`/`shutdown` to the writer, and try to
//!   admit everything else into the bounded queue (shedding on full);
//! * **workers** (N) — pop the queue, pin the current hub snapshot,
//!   evaluate, respond;
//! * **writer** — the only thread touching the `Mediator`: applies
//!   update batches and republishes through the hub;
//! * **watchdog** — cancels the [`CancelToken`] of any in-flight request
//!   whose wall deadline passed (evaluators observe it at the next
//!   fixpoint round boundary).

use crate::wire::{obj, Json};
use kind_core::{
    section5_fetch, Mediator, NeuroSchema, PinnedSnapshot, Section5Fetch, Section5Query,
    SnapshotHub,
};
use kind_datalog::{CancelToken, EvalOptions};
use kind_sources::{build_scenario, ncmir_update_rows, ScenarioParams};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port; the bound
    /// address is reported by [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads serving the admission queue.
    pub workers: usize,
    /// Admission-queue capacity: requests beyond this are shed with a
    /// typed `overloaded` response instead of queuing unboundedly.
    pub queue_depth: usize,
    /// Default per-request wall budget in ms (0 = none). Requests may
    /// override with their own `budget_ms`; queue wait counts against it.
    pub default_budget_ms: u64,
    /// The scenario the mediator is seeded with.
    pub scenario: ScenarioParams,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 64,
            default_budget_ms: 0,
            scenario: ScenarioParams::default(),
        }
    }
}

/// Monotonic counters exported by the `stats` op.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests admitted into the queue.
    pub admitted: AtomicU64,
    /// Requests answered successfully.
    pub served: AtomicU64,
    /// Requests shed with `overloaded` at admission.
    pub shed: AtomicU64,
    /// Requests failed with `deadline_exceeded`.
    pub deadline: AtomicU64,
    /// Publishes applied by the writer thread.
    pub publishes: AtomicU64,
}

/// A connection's write half, shared between the reader (sheds, inline
/// stats) and the workers (admitted responses): the mutex keeps lines
/// whole when both respond concurrently.
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    fn send(&self, value: &Json) {
        let mut line = value.to_string();
        line.push('\n');
        // A dead peer is not a server error: drop the response and let
        // the reader notice EOF on its side.
        if let Ok(mut s) = self.stream.lock() {
            let _ = s.write_all(line.as_bytes());
        }
    }
}

/// One admitted request.
struct Job {
    id: Json,
    op: Op,
    conn: Arc<ConnWriter>,
    enqueued: Instant,
    budget_ms: u64,
}

enum Op {
    Ping,
    QueryFl(String),
    Answer(String),
    Plan,
    Sleep(u64),
}

enum WriteCmd {
    Publish {
        id: Json,
        rows: usize,
        conn: Arc<ConnWriter>,
    },
    Stop,
}

/// In-flight cancellation registry for the watchdog.
#[derive(Default)]
struct Watchlist {
    next: AtomicU64,
    entries: Mutex<HashMap<u64, (Instant, CancelToken)>>,
}

impl Watchlist {
    fn register(&self, deadline: Instant, token: CancelToken) -> u64 {
        let key = self.next.fetch_add(1, Ordering::Relaxed);
        self.entries
            .lock()
            .expect("watchlist poisoned")
            .insert(key, (deadline, token));
        key
    }

    fn unregister(&self, key: u64) {
        self.entries
            .lock()
            .expect("watchlist poisoned")
            .remove(&key);
    }

    /// Cancels everything past `now`; cancelled entries stay registered
    /// (cancel is sticky) until their worker unregisters them.
    fn sweep(&self, now: Instant) {
        for (deadline, token) in self.entries.lock().expect("watchlist poisoned").values() {
            if now >= *deadline {
                token.cancel();
            }
        }
    }
}

struct Shared {
    hub: Arc<SnapshotHub>,
    queue: Mutex<std::collections::VecDeque<Job>>,
    queue_cv: Condvar,
    queue_depth: usize,
    default_budget_ms: u64,
    shutdown: AtomicBool,
    stats: ServerStats,
    watchlist: Watchlist,
    schema: NeuroSchema,
    fetched: Section5Fetch,
    writer_tx: Mutex<mpsc::Sender<WriteCmd>>,
}

impl Shared {
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
        let _ = self
            .writer_tx
            .lock()
            .expect("writer tx poisoned")
            .send(WriteCmd::Stop);
    }
}

/// A running server: bound address plus the handles to stop and join it.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The snapshot hub the server serves from (for embedding tests and
    /// benches that want to observe epochs from outside).
    pub fn hub(&self) -> Arc<SnapshotHub> {
        Arc::clone(&self.shared.hub)
    }

    /// Whether shutdown has been requested (via the `shutdown` op, a
    /// signal, or [`Self::request_shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown without blocking: the acceptor stops accepting,
    /// workers drain, and the writer stops.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Requests shutdown and joins every server thread.
    pub fn shutdown(mut self) {
        self.shared.request_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Builds the scenario mediator, seeds the hub with the first
/// publication, pre-runs the §5 fetch phase (so `plan` replays warm),
/// and starts every server thread. Returns once the listener is bound.
pub fn spawn_server(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let mut mediator = build_scenario(&config.scenario);
    let schema = NeuroSchema::default();
    let q = Section5Query {
        organism: "rat".into(),
        transmitting_compartment: "Parallel_Fiber".into(),
        ion: "calcium".into(),
    };
    mediator
        .materialize_all()
        .map_err(|e| std::io::Error::other(format!("scenario materialize failed: {e}")))?;
    let fetched = {
        let (federation, knowledge) = mediator.fetch_eval_planes();
        section5_fetch(federation, knowledge, &schema, &q, true)
            .map_err(|e| std::io::Error::other(format!("warm plan fetch failed: {e}")))?
    };
    let hub = mediator.hub();
    mediator
        .publish_snapshot()
        .map_err(|e| std::io::Error::other(format!("initial publish failed: {e}")))?;

    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let (writer_tx, writer_rx) = mpsc::channel::<WriteCmd>();
    let shared = Arc::new(Shared {
        hub,
        queue: Mutex::new(std::collections::VecDeque::new()),
        queue_cv: Condvar::new(),
        queue_depth: config.queue_depth.max(1),
        default_budget_ms: config.default_budget_ms,
        shutdown: AtomicBool::new(false),
        stats: ServerStats::default(),
        watchlist: Watchlist::default(),
        schema,
        fetched,
        writer_tx: Mutex::new(writer_tx),
    });

    let mut threads = Vec::new();

    // Writer: sole owner of the mediator from here on.
    {
        let shared = Arc::clone(&shared);
        let seed = config.scenario.seed;
        threads.push(
            thread::Builder::new()
                .name("kind-writer".into())
                .spawn(move || writer_loop(mediator, seed, writer_rx, &shared))?,
        );
    }
    // Workers.
    for i in 0..config.workers.max(1) {
        let shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name(format!("kind-worker-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    // Watchdog.
    {
        let shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name("kind-watchdog".into())
                .spawn(move || {
                    while !shared.shutdown.load(Ordering::SeqCst) {
                        shared.watchlist.sweep(Instant::now());
                        thread::sleep(Duration::from_millis(2));
                    }
                })?,
        );
    }
    // Acceptor.
    {
        let shared = Arc::clone(&shared);
        threads.push(
            thread::Builder::new()
                .name("kind-acceptor".into())
                .spawn(move || accept_loop(listener, &shared))?,
        );
    }

    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

/// [`spawn_server`] then block until shutdown completes — the binary's
/// server mode.
pub fn run_server(config: ServerConfig) -> std::io::Result<SocketAddr> {
    let handle = spawn_server(config)?;
    let addr = handle.addr();
    while !handle.shutdown_requested() && !crate::signalled() {
        thread::sleep(Duration::from_millis(25));
    }
    handle.shutdown();
    Ok(addr)
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                if let Ok(t) = thread::Builder::new()
                    .name("kind-conn".into())
                    .spawn(move || conn_loop(stream, &shared))
                {
                    readers.push(t);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for t in readers {
        let _ = t.join();
    }
}

fn conn_loop(stream: TcpStream, shared: &Arc<Shared>) {
    // A finite read timeout keeps the reader responsive to shutdown even
    // when the client goes quiet.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let writer = Arc::new(ConnWriter {
        stream: Mutex::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        }),
    });
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {
                let text = line.trim();
                if text.is_empty() {
                    continue;
                }
                match Json::parse(text) {
                    Ok(req) => handle_request(req, &writer, shared),
                    Err(e) => writer.send(&error_response(
                        Json::Null,
                        "bad_request",
                        &format!("unparseable request: {e}"),
                    )),
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

fn error_response(id: Json, error: &str, detail: &str) -> Json {
    obj([
        ("id", id),
        ("ok", Json::Bool(false)),
        ("error", Json::str(error)),
        ("detail", Json::str(detail)),
    ])
}

fn handle_request(req: Json, writer: &Arc<ConnWriter>, shared: &Arc<Shared>) {
    let id = req.get("id").cloned().unwrap_or(Json::Null);
    let Some(op_name) = req.get("op").and_then(Json::as_str) else {
        writer.send(&error_response(id, "bad_request", "missing \"op\""));
        return;
    };
    match op_name {
        // Out-of-band ops: answered without touching the worker queue.
        "stats" => {
            let s = &shared.stats;
            writer.send(&obj([
                ("id", id),
                ("ok", Json::Bool(true)),
                ("op", Json::str("stats")),
                ("epoch", Json::int(shared.hub.epoch())),
                ("admitted", Json::int(s.admitted.load(Ordering::Relaxed))),
                ("served", Json::int(s.served.load(Ordering::Relaxed))),
                ("shed", Json::int(s.shed.load(Ordering::Relaxed))),
                ("deadline", Json::int(s.deadline.load(Ordering::Relaxed))),
                ("publishes", Json::int(s.publishes.load(Ordering::Relaxed))),
                ("queue_depth", Json::int(shared.queue_depth as u64)),
            ]));
        }
        "shutdown" => {
            writer.send(&obj([
                ("id", id),
                ("ok", Json::Bool(true)),
                ("op", Json::str("shutdown")),
            ]));
            shared.request_shutdown();
        }
        "publish" => {
            let rows = req.get("rows").and_then(Json::as_u64).unwrap_or(1) as usize;
            let cmd = WriteCmd::Publish {
                id,
                rows: rows.clamp(1, 10_000),
                conn: Arc::clone(writer),
            };
            if shared
                .writer_tx
                .lock()
                .expect("writer tx poisoned")
                .send(cmd)
                .is_err()
            {
                // Writer already stopped: shutting down.
            }
        }
        // Queued ops: bounded admission, shed on full.
        name => {
            let op = match name {
                "ping" => Op::Ping,
                "query_fl" => match req.get("pattern").and_then(Json::as_str) {
                    Some(p) => Op::QueryFl(p.to_string()),
                    None => {
                        writer.send(&error_response(id, "bad_request", "missing \"pattern\""));
                        return;
                    }
                },
                "answer" => match req.get("rule").and_then(Json::as_str) {
                    Some(r) => Op::Answer(r.to_string()),
                    None => {
                        writer.send(&error_response(id, "bad_request", "missing \"rule\""));
                        return;
                    }
                },
                "plan" => Op::Plan,
                "sleep" => Op::Sleep(
                    req.get("ms")
                        .and_then(Json::as_u64)
                        .unwrap_or(10)
                        .min(2_000),
                ),
                other => {
                    writer.send(&error_response(
                        id,
                        "bad_request",
                        &format!("unknown op {other:?}"),
                    ));
                    return;
                }
            };
            let budget_ms = req
                .get("budget_ms")
                .and_then(Json::as_u64)
                .unwrap_or(shared.default_budget_ms);
            let job = Job {
                id,
                op,
                conn: Arc::clone(writer),
                enqueued: Instant::now(),
                budget_ms,
            };
            let mut queue = shared.queue.lock().expect("queue poisoned");
            if queue.len() >= shared.queue_depth {
                drop(queue);
                shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                writer.send(&obj([
                    ("id", job.id),
                    ("ok", Json::Bool(false)),
                    ("error", Json::str("overloaded")),
                    ("queue_depth", Json::int(shared.queue_depth as u64)),
                ]));
            } else {
                queue.push_back(job);
                drop(queue);
                shared.stats.admitted.fetch_add(1, Ordering::Relaxed);
                shared.queue_cv.notify_one();
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = shared.queue_cv.wait(queue).expect("queue poisoned");
            }
        };
        serve_job(job, shared);
    }
}

fn serve_job(job: Job, shared: &Arc<Shared>) {
    let queue_wait = job.enqueued.elapsed();
    // The queue wait counts against the budget: a request that waited
    // out its whole budget is failed here, before burning a worker on an
    // answer the client has already given up on.
    if job.budget_ms > 0 && queue_wait >= Duration::from_millis(job.budget_ms) {
        shared.stats.deadline.fetch_add(1, Ordering::Relaxed);
        job.conn.send(&obj([
            ("id", job.id),
            ("ok", Json::Bool(false)),
            ("error", Json::str("deadline_exceeded")),
            ("queue_us", Json::int(queue_wait.as_micros() as u64)),
        ]));
        return;
    }
    let Some(pinned) = shared.hub.load() else {
        job.conn.send(&error_response(
            job.id,
            "query_error",
            "no snapshot published yet",
        ));
        return;
    };
    let started = Instant::now();
    let outcome = eval_op(&job, &pinned, shared, queue_wait);
    let eval_us = started.elapsed().as_micros() as u64;
    match outcome {
        Ok(mut fields) => {
            shared.stats.served.fetch_add(1, Ordering::Relaxed);
            let mut head = vec![
                ("id".to_string(), job.id),
                ("ok".to_string(), Json::Bool(true)),
                ("epoch".to_string(), Json::int(pinned.epoch())),
                (
                    "queue_us".to_string(),
                    Json::int(queue_wait.as_micros() as u64),
                ),
                ("eval_us".to_string(), Json::int(eval_us)),
            ];
            if let Json::Obj(rest) = &mut fields {
                head.append(rest);
            }
            job.conn.send(&Json::Obj(head));
        }
        Err((kind, detail)) => {
            if kind == "deadline_exceeded" {
                shared.stats.deadline.fetch_add(1, Ordering::Relaxed);
            }
            let mut resp = error_response(job.id, kind, &detail);
            if let Json::Obj(pairs) = &mut resp {
                pairs.push(("epoch".into(), Json::int(pinned.epoch())));
                pairs.push(("queue_us".into(), Json::int(queue_wait.as_micros() as u64)));
            }
            job.conn.send(&resp);
        }
    }
}

type OpOutcome = Result<Json, (&'static str, String)>;

fn eval_op(
    job: &Job,
    pinned: &PinnedSnapshot,
    shared: &Arc<Shared>,
    queue_wait: Duration,
) -> OpOutcome {
    match &job.op {
        Op::Ping => Ok(obj([("op", Json::str("ping"))])),
        Op::Sleep(ms) => {
            std::thread::sleep(Duration::from_millis(*ms));
            Ok(obj([("op", Json::str("sleep")), ("ms", Json::int(*ms))]))
        }
        Op::QueryFl(pattern) => {
            let rows = pinned
                .query_fl_rendered(pattern)
                .map_err(|e| ("query_error", e.to_string()))?;
            Ok(obj([
                ("op", Json::str("query_fl")),
                ("row_count", Json::int(rows.len() as u64)),
                ("rows", render_rows(&rows)),
            ]))
        }
        Op::Answer(rule) => {
            // Per-request cancellation: a private token (never the
            // snapshot's shared one) under watchdog control for whatever
            // budget remains after the queue wait.
            let token = CancelToken::new();
            let opts = EvalOptions {
                cancel: Some(token.clone()),
                ..pinned.eval_options().clone()
            };
            let watch = (job.budget_ms > 0).then(|| {
                let remaining = Duration::from_millis(job.budget_ms).saturating_sub(queue_wait);
                shared
                    .watchlist
                    .register(Instant::now() + remaining, token.clone())
            });
            let result = pinned.answer_with(rule, &opts);
            if let Some(key) = watch {
                shared.watchlist.unregister(key);
            }
            let answer = match result {
                Ok(a) => a,
                Err(e) if token.is_cancelled() => {
                    return Err(("deadline_exceeded", e.to_string()));
                }
                Err(e) => return Err(("query_error", e.to_string())),
            };
            Ok(obj([
                ("op", Json::str("answer")),
                ("row_count", Json::int(answer.rows.len() as u64)),
                ("rows", render_rows(&answer.rows)),
                (
                    "eval",
                    obj([
                        ("iterations", Json::int(answer.stats.iterations as u64)),
                        ("derived", Json::int(answer.stats.derived as u64)),
                        ("applications", Json::int(answer.stats.applications as u64)),
                        ("index_hits", Json::int(answer.stats.index_hits as u64)),
                        ("magic_fired", Json::Bool(answer.magic_fired)),
                        ("magic_declined", Json::Bool(answer.magic_declined)),
                    ]),
                ),
            ]))
        }
        Op::Plan => {
            let trace = pinned
                .run_section5(&shared.schema, &shared.fetched)
                .map_err(|e| ("query_error", e.to_string()))?;
            Ok(obj([
                ("op", Json::str("plan")),
                (
                    "root",
                    trace.root.clone().map(Json::Str).unwrap_or(Json::Null),
                ),
                (
                    "distribution_rows",
                    Json::int(trace.distribution.len() as u64),
                ),
                (
                    "selected_sources",
                    Json::int(trace.selected_sources.len() as u64),
                ),
                ("report", Json::str(trace.report.summary_line())),
            ]))
        }
    }
}

fn render_rows(rows: &[Vec<String>]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| Json::Arr(r.iter().map(Json::str).collect()))
            .collect(),
    )
}

fn writer_loop(
    mut mediator: Mediator,
    seed: u64,
    rx: mpsc::Receiver<WriteCmd>,
    shared: &Arc<Shared>,
) {
    let mut batch = 1_000; // disjoint from any bench batches
    loop {
        match rx.recv() {
            Ok(WriteCmd::Publish { id, rows, conn }) => {
                let started = Instant::now();
                batch += 1;
                let update = ncmir_update_rows(seed, batch, rows);
                let loaded = update.len();
                let mut failed = None;
                for row in &update {
                    if let Err(e) = mediator.load_row("NCMIR", "protein_amount", row) {
                        failed = Some(e.to_string());
                        break;
                    }
                }
                let result = match failed {
                    Some(detail) => Err(detail),
                    None => mediator.publish().map(|_| ()).map_err(|e| e.to_string()),
                };
                match result {
                    Ok(()) => {
                        shared.stats.publishes.fetch_add(1, Ordering::Relaxed);
                        conn.send(&obj([
                            ("id", id),
                            ("ok", Json::Bool(true)),
                            ("op", Json::str("publish")),
                            ("loaded", Json::int(loaded as u64)),
                            ("epoch", Json::int(shared.hub.epoch())),
                            (
                                "publish_us",
                                Json::int(started.elapsed().as_micros() as u64),
                            ),
                        ]));
                    }
                    Err(detail) => conn.send(&error_response(id, "publish_error", &detail)),
                }
            }
            Ok(WriteCmd::Stop) | Err(_) => return,
        }
    }
}
