//! The wire format: one JSON value per line, hand-rolled.
//!
//! The offline compat policy rules out `serde`, so this module carries a
//! deliberately small JSON implementation — a parser and serializer for
//! exactly the value shapes the protocol uses (objects, arrays, strings,
//! integers/floats, booleans, null). It is not a general-purpose JSON
//! library: numbers round-trip through `f64`, object key order is
//! preserved as written, and duplicate keys keep the first occurrence on
//! lookup.
//!
//! Requests and responses are both single-line objects; see
//! [`crate::server`] for the protocol fields.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value.
    pub fn int(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Looks up a key in an object (`None` for non-objects / absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses a JSON value from text (the whole input must be consumed,
    /// modulo whitespace).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }
}

/// An object builder for response construction:
/// `obj([("ok", Json::Bool(true)), ...])`.
pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        // Surrogate pairs are not needed by this protocol;
                        // lone surrogates map to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unmodified).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\t' => write!(f, "\\t")?,
            '\r' => write!(f, "\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let cases = [
            r#"{"id":1,"op":"answer","rule":"p(X) :- q(X)."}"#,
            r#"{"ok":true,"rows":[["a","b"],["c","d"]],"epoch":3}"#,
            r#"{"nested":{"a":[1,2.5,-3],"b":null,"c":false}}"#,
            r#"["line \"quoted\"","tab\there"]"#,
        ];
        for case in cases {
            let v = Json::parse(case).unwrap();
            let rendered = v.to_string();
            assert_eq!(Json::parse(&rendered).unwrap(), v, "case {case}");
        }
    }

    #[test]
    fn accessors_and_builder() {
        let v = obj([
            ("ok", Json::Bool(true)),
            ("epoch", Json::int(7)),
            ("err", Json::str("overloaded")),
        ]);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("epoch").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("err").and_then(Json::as_str), Some("overloaded"));
        assert!(v.get("missing").is_none());
        let parsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("[1,2,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn control_chars_escape() {
        let v = Json::str("a\nb\u{1}c");
        let text = v.to_string();
        assert_eq!(text, "\"a\\nb\\u0001c\"");
        assert_eq!(Json::parse(&text).unwrap(), v);
        // A newline inside a string value must never split the wire line.
        assert!(!text.contains('\n'));
    }
}
