//! The client workload driver (`kind-server --client`): M threads
//! issuing a mixed query workload against a running server,
//! pretty-printing per-response summary lines, and reporting aggregate
//! outcome counts. The CI smoke test and the sustained-QPS bench both
//! drive the server through this module's [`Conn`] helper.

use crate::wire::{obj, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// A blocking request/response connection to a running server. Requests
/// are issued one at a time per connection; the response for an `id` is
/// awaited by reading lines until it arrives (sheds are written
/// immediately by the server's reader thread, so ids may interleave when
/// a connection pipelines).
pub struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Conn {
    /// Connects to `addr` (e.g. `127.0.0.1:4901`).
    pub fn connect(addr: &str) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            next_id: 0,
        })
    }

    /// Sends a request object without waiting for its response; returns
    /// the id assigned to it. (`fields` must not include `id`.)
    pub fn send(&mut self, fields: Json) -> std::io::Result<u64> {
        self.next_id += 1;
        let id = self.next_id;
        let mut pairs = vec![("id".to_string(), Json::int(id))];
        if let Json::Obj(rest) = fields {
            pairs.extend(rest);
        }
        let mut line = Json::Obj(pairs).to_string();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        Ok(id)
    }

    /// Reads the next response line, whatever request it answers.
    pub fn recv(&mut self) -> std::io::Result<Json> {
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    ))
                }
                Ok(_) => {
                    let text = line.trim();
                    if text.is_empty() {
                        continue;
                    }
                    return Json::parse(text).map_err(std::io::Error::other);
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends `fields` and waits for the response with the matching id,
    /// discarding any interleaved responses to other ids.
    pub fn request(&mut self, fields: Json) -> std::io::Result<Json> {
        let id = self.send(fields)?;
        loop {
            let resp = self.recv()?;
            if resp.get("id").and_then(Json::as_u64) == Some(id) {
                return Ok(resp);
            }
        }
    }
}

/// Client-mode configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Server address.
    pub addr: String,
    /// Concurrent client threads.
    pub threads: usize,
    /// Requests per thread.
    pub requests: usize,
    /// Per-request budget in ms forwarded to the server (0 = server
    /// default).
    pub budget_ms: u64,
    /// Print one summary line per response.
    pub verbose: bool,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addr: "127.0.0.1:4901".into(),
            threads: 2,
            requests: 25,
            budget_ms: 0,
            verbose: true,
        }
    }
}

/// Aggregate outcome of a client run.
#[derive(Debug, Default)]
pub struct ClientSummary {
    /// Successful responses.
    pub ok: u64,
    /// `overloaded` sheds.
    pub overloaded: u64,
    /// `deadline_exceeded` failures.
    pub deadline: u64,
    /// Any other failure.
    pub errors: u64,
}

/// The mixed workload, cycled per request index: FL pattern scans, a
/// goal-directed conjunctive answer, the warm §5 plan, and pings.
pub fn workload_request(i: usize, budget_ms: u64) -> Json {
    let mut fields = match i % 5 {
        0 => obj([
            ("op", Json::str("query_fl")),
            ("pattern", Json::str("X : protein_amount")),
        ]),
        1 => obj([
            ("op", Json::str("query_fl")),
            ("pattern", Json::str("X : neurotransmission")),
        ]),
        2 => obj([
            ("op", Json::str("answer")),
            (
                "rule",
                Json::str(
                    r#"calcium_sites(P, L) :- X : protein_amount, X[protein_name -> P],
                       X[location -> L], X[ion_bound -> "calcium"]."#,
                ),
            ),
        ]),
        3 => obj([("op", Json::str("plan"))]),
        _ => obj([("op", Json::str("ping"))]),
    };
    if budget_ms > 0 {
        if let Json::Obj(pairs) = &mut fields {
            pairs.push(("budget_ms".into(), Json::int(budget_ms)));
        }
    }
    fields
}

/// One human-readable line per response, in the spirit of
/// `AnswerReport::summary_line`.
pub fn summary_line(thread: usize, resp: &Json) -> String {
    let id = resp.get("id").and_then(Json::as_u64).unwrap_or(0);
    let op = resp.get("op").and_then(Json::as_str).unwrap_or("?");
    if resp.get("ok").and_then(Json::as_bool) == Some(true) {
        let epoch = resp.get("epoch").and_then(Json::as_u64).unwrap_or(0);
        let queue_us = resp.get("queue_us").and_then(Json::as_u64).unwrap_or(0);
        let eval_us = resp.get("eval_us").and_then(Json::as_u64).unwrap_or(0);
        let mut line = format!(
            "[c{thread}] #{id} {op:<8} ok · epoch {epoch} · queue {queue_us}µs · eval {eval_us}µs"
        );
        if let Some(n) = resp.get("row_count").and_then(Json::as_u64) {
            line.push_str(&format!(" · {n} rows"));
        }
        if let Some(eval) = resp.get("eval") {
            if eval.get("magic_fired").and_then(Json::as_bool) == Some(true) {
                line.push_str(" · magic");
            }
            if let Some(d) = eval.get("derived").and_then(Json::as_u64) {
                line.push_str(&format!(" · {d} derived"));
            }
        }
        if let Some(report) = resp.get("report").and_then(Json::as_str) {
            line.push_str(&format!(" · {report}"));
        }
        line
    } else {
        let err = resp.get("error").and_then(Json::as_str).unwrap_or("error");
        format!("[c{thread}] #{id} {op:<8} FAILED · {err}")
    }
}

/// Runs the mixed workload from [`ClientConfig::threads`] connections
/// and returns the aggregate outcome counts.
pub fn run_client(config: &ClientConfig) -> std::io::Result<ClientSummary> {
    let ok = Arc::new(AtomicU64::new(0));
    let overloaded = Arc::new(AtomicU64::new(0));
    let deadline = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    thread::scope(|s| {
        for t in 0..config.threads.max(1) {
            let (ok, overloaded, deadline, errors) = (
                Arc::clone(&ok),
                Arc::clone(&overloaded),
                Arc::clone(&deadline),
                Arc::clone(&errors),
            );
            let config = config.clone();
            s.spawn(move || {
                let mut conn = match Conn::connect(&config.addr) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("[c{t}] connect failed: {e}");
                        errors.fetch_add(config.requests as u64, Ordering::Relaxed);
                        return;
                    }
                };
                for i in 0..config.requests {
                    let req = workload_request(t + i, config.budget_ms);
                    match conn.request(req) {
                        Ok(resp) => {
                            if config.verbose {
                                println!("{}", summary_line(t, &resp));
                            }
                            if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                                ok.fetch_add(1, Ordering::Relaxed);
                            } else {
                                match resp.get("error").and_then(Json::as_str) {
                                    Some("overloaded") => {
                                        overloaded.fetch_add(1, Ordering::Relaxed);
                                        // The backpressure contract: back
                                        // off before retrying.
                                        thread::sleep(Duration::from_millis(5));
                                    }
                                    Some("deadline_exceeded") => {
                                        deadline.fetch_add(1, Ordering::Relaxed);
                                    }
                                    _ => {
                                        errors.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                        Err(e) => {
                            eprintln!("[c{t}] request failed: {e}");
                            errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            });
        }
    });
    Ok(ClientSummary {
        ok: ok.load(Ordering::Relaxed),
        overloaded: overloaded.load(Ordering::Relaxed),
        deadline: deadline.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
    })
}
