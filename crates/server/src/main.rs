//! The `kind-server` binary: server mode by default, workload driver
//! with `--client`. Run `kind-server --help` for the flags.

use kind_server::{install_signal_handlers, run_client, run_server, ClientConfig, ServerConfig};
use kind_sources::ScenarioParams;

const HELP: &str = "\
kind-server — the deployed KIND mediator (see DESIGN.md, server plane)

USAGE:
  kind-server [--addr HOST:PORT] [--workers N] [--queue-depth N]
              [--budget-ms N] [--scenario small|default]
              [--fetch-mode scoped|overlapped] [--fetch-workers N]
              [--in-flight N]
  kind-server --client [--addr HOST:PORT] [--threads N] [--requests N]
              [--budget-ms N] [--quiet]

`--fetch-mode overlapped` routes cold fetches through the stall-aware
executor: `--fetch-workers` sizes its fixed pool (0 = auto) and
`--in-flight` caps concurrent fetch jobs (0 = unlimited). Answers are
bit-identical across modes; only wall clock and threads change.

Server mode starts the scenario mediator, publishes the first snapshot
into the hub, and serves the JSON-per-line protocol until SIGTERM/ctrl-c
or a `shutdown` op. Client mode connects and issues a mixed workload,
printing one summary line per response.
";

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_num(args: &[String], name: &str, default: u64) -> u64 {
    match parse_flag(args, name) {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad value for {name}: {v:?}");
            std::process::exit(2);
        }),
        None => default,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return;
    }
    if args.iter().any(|a| a == "--client") {
        let config = ClientConfig {
            addr: parse_flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:4901".into()),
            threads: parse_num(&args, "--threads", 2) as usize,
            requests: parse_num(&args, "--requests", 25) as usize,
            budget_ms: parse_num(&args, "--budget-ms", 0),
            verbose: !args.iter().any(|a| a == "--quiet"),
        };
        match run_client(&config) {
            Ok(summary) => {
                println!(
                    "client done: {} ok, {} overloaded, {} deadline_exceeded, {} errors",
                    summary.ok, summary.overloaded, summary.deadline, summary.errors
                );
                if summary.errors > 0 {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("client failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let mut scenario = match parse_flag(&args, "--scenario").as_deref() {
        Some("small") => ScenarioParams {
            senselab_rows: 10,
            ncmir_rows: 15,
            synapse_rows: 10,
            noise_sources: 1,
            noise_rows: 5,
            ..ScenarioParams::default()
        },
        Some("default") | None => ScenarioParams::default(),
        Some(other) => {
            eprintln!("unknown scenario {other:?} (want small|default)");
            std::process::exit(2);
        }
    };
    scenario.fetch_mode = match parse_flag(&args, "--fetch-mode").as_deref() {
        Some("scoped") | None => kind_core::FetchMode::ScopedThreads,
        Some("overlapped") => kind_core::FetchMode::Overlapped,
        Some(other) => {
            eprintln!("unknown fetch mode {other:?} (want scoped|overlapped)");
            std::process::exit(2);
        }
    };
    scenario.fetch_threads =
        parse_num(&args, "--fetch-workers", scenario.fetch_threads as u64) as usize;
    scenario.in_flight = parse_num(&args, "--in-flight", scenario.in_flight as u64) as usize;
    let config = ServerConfig {
        addr: parse_flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:4901".into()),
        workers: parse_num(&args, "--workers", 2) as usize,
        queue_depth: parse_num(&args, "--queue-depth", 64) as usize,
        default_budget_ms: parse_num(&args, "--budget-ms", 0),
        scenario,
    };
    install_signal_handlers();
    eprintln!(
        "kind-server: {} workers, queue depth {}, default budget {}ms — binding {} ...",
        config.workers, config.queue_depth, config.default_budget_ms, config.addr
    );
    match kind_server::spawn_server(config) {
        Ok(handle) => {
            // The line CI and scripts wait for before connecting.
            println!("kind-server listening on {}", handle.addr());
            while !handle.shutdown_requested() && !kind_server::signalled() {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            eprintln!("kind-server: shutting down ...");
            handle.shutdown();
            eprintln!("kind-server: bye");
        }
        Err(e) => {
            eprintln!("kind-server failed to start: {e}");
            std::process::exit(1);
        }
    }
}

// `run_server` and `run_client` are the library entry points; keep them
// referenced so the lib API and the binary cannot drift apart.
#[allow(dead_code)]
fn _api_holds(config: ServerConfig) -> std::io::Result<std::net::SocketAddr> {
    run_server(config)
}
