//! # kind-server — the deployed mediator
//!
//! The paper's KIND mediator is a standing service that clients and
//! wrappers connect to, not a library embedded per process. This crate
//! is that deployment shape: a long-lived binary that owns one
//! [`kind_core::Mediator`] (the single writer), publishes through the
//! [`kind_core::SnapshotHub`], and serves queries from N worker threads
//! over a line-based JSON protocol with **admission control** (a bounded
//! queue) and **backpressure** (typed `overloaded` sheds instead of
//! unbounded queuing).
//!
//! * [`server`] — the serving plane: protocol, admission queue, workers,
//!   writer thread, watchdog;
//! * [`client`] — the workload driver behind `kind-server --client`:
//!   issues a mixed query workload and pretty-prints per-response
//!   summaries (doubles as the CI smoke test);
//! * [`wire`] — the hand-rolled JSON-per-line wire format.
//!
//! Start a server and query it:
//!
//! ```text
//! $ kind-server --workers 2 --queue-depth 64
//! kind-server listening on 127.0.0.1:4901 ...
//! $ kind-server --client --addr 127.0.0.1:4901 --threads 2 --requests 10
//! ```
#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod wire;

pub use client::{run_client, ClientConfig, ClientSummary};
pub use server::{run_server, spawn_server, ServerConfig, ServerHandle, ServerStats};

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the SIGTERM/SIGINT handler; the server loop polls it.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been delivered.
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Installs SIGTERM/SIGINT handlers that flip the [`signalled`] flag so
/// [`server::run_server`] unwinds cleanly (drains workers, joins
/// threads) instead of dying mid-response. No `libc` crate in the
/// offline environment, so the raw `signal(2)` symbol is declared
/// directly; the handler only stores to an atomic, which is
/// async-signal-safe.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// Non-unix stub: ctrl-c just kills the process.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}
