//! Keeps the README's fault-tolerance snippet honest.

use kind::core::{Capability, Fault, FaultInjector, Mediator, MemoryWrapper, SourceOutcome};
use kind::dm::{DomainMap, ExecMode};
use kind::gcm::GcmValue;
use std::sync::Arc;

#[test]
fn readme_fault_tolerance_snippet() {
    let mut med = Mediator::new(DomainMap::new(), ExecMode::Assertion);
    let mut lab = MemoryWrapper::new("FLAKY");
    lab.caps.push(Capability {
        class: "cells".into(),
        pushable: vec![],
    });
    lab.add_row("cells", "c1", vec![("volume", GcmValue::Int(7))]);
    let flaky = FaultInjector::new(Arc::new(lab), med.clock()).with_fault(Fault::FailFirst(2));
    med.register(Arc::new(flaky)).unwrap();
    med.materialize_all().unwrap();
    let report = med.report();
    assert!(report.is_complete());
    assert_eq!(
        report.source("FLAKY").unwrap().outcome,
        SourceOutcome::Retried { retries: 2 }
    );
    println!("{}", report.summary());
}
