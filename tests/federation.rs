//! Integration tests spanning the whole stack: wrappers → plug-ins → GCM
//! → domain map → mediator → query plan.

use kind::core::{
    protein_distribution, run_section5, Anchor, Capability, Mediator, MemoryWrapper, NeuroSchema,
    Section5Query,
};
use kind::dm::ExecMode;
use kind::gcm::GcmValue;
use kind::sources::{build_scenario, scenario_domain_map, ScenarioParams};
use std::sync::Arc;

fn default_query() -> Section5Query {
    Section5Query {
        organism: "rat".into(),
        transmitting_compartment: "Parallel_Fiber".into(),
        ion: "calcium".into(),
    }
}

#[test]
fn scenario_registers_through_three_different_formalisms() {
    let m = build_scenario(&ScenarioParams::default());
    let formalisms: Vec<&str> = m.sources().iter().map(|s| s.wrapper.formalism()).collect();
    assert!(formalisms.contains(&"er"));
    assert!(formalisms.contains(&"uxf"));
    assert!(formalisms.contains(&"rdfs"));
    assert!(formalisms.contains(&"gcm"));
}

#[test]
fn section5_answers_are_stable_across_seeds_structurally() {
    for seed in [1, 7, 2001] {
        let mut m = build_scenario(&ScenarioParams {
            seed,
            ..Default::default()
        });
        let trace = run_section5(&mut m, &NeuroSchema::default(), &default_query(), true).unwrap();
        assert_eq!(
            trace.selected_sources,
            vec!["NCMIR".to_string()],
            "seed {seed}"
        );
        assert_eq!(trace.root.as_deref(), Some("Purkinje_Cell"), "seed {seed}");
        assert!(!trace.distribution.is_empty(), "seed {seed}");
    }
}

#[test]
fn semantic_index_prunes_proportionally_to_noise() {
    // With k irrelevant sources, the blind plan contacts k more sources;
    // the indexed plan stays constant.
    let mut indexed_queries = Vec::new();
    let mut blind_queries = Vec::new();
    for noise in [0usize, 4, 8] {
        let params = ScenarioParams {
            noise_sources: noise,
            ..Default::default()
        };
        let mut m = build_scenario(&params);
        let t = run_section5(&mut m, &NeuroSchema::default(), &default_query(), true).unwrap();
        indexed_queries.push(t.stats.source_queries);
        let mut m2 = build_scenario(&params);
        let t2 = run_section5(&mut m2, &NeuroSchema::default(), &default_query(), false).unwrap();
        blind_queries.push(t2.stats.source_queries);
    }
    assert_eq!(indexed_queries[0], indexed_queries[2], "indexed plan flat");
    assert!(
        blind_queries[2] > blind_queries[0],
        "blind plan grows with noise: {blind_queries:?}"
    );
}

#[test]
fn example4_distribution_from_cerebellum_root() {
    // The paper's demo call: P = "cerebellum", Y = "Ryanodine_Receptor".
    let mut m = build_scenario(&ScenarioParams::default());
    let dist = protein_distribution(
        &mut m,
        &NeuroSchema::default(),
        "Ryanodine_Receptor",
        "Cerebellum",
    )
    .unwrap();
    assert!(!dist.is_empty());
    // The cerebellum total dominates everything below it.
    let root_total = dist
        .iter()
        .find(|(c, _)| c == "Cerebellum")
        .map(|(_, t)| *t)
        .expect("root present");
    assert!(dist.iter().all(|(_, t)| *t <= root_total));
    // Purkinje spine amounts (if any) roll up into the dendrite and cell.
    let get = |c: &str| {
        dist.iter()
            .find(|(n, _)| n == c)
            .map(|(_, t)| *t)
            .unwrap_or(0)
    };
    assert!(get("Purkinje_Dendrite") >= get("Purkinje_Spine"));
    assert!(get("Purkinje_Cell") >= get("Purkinje_Dendrite"));
}

#[test]
fn loose_federation_correlates_worlds_through_anchors() {
    // Example 1: the two labs' data never joins directly; the domain map
    // correlates them. SYNAPSE anchors at Pyramidal structures, NCMIR at
    // Purkinje structures — both under Spiny_Neuron-related cones.
    let m = build_scenario(&ScenarioParams::default());
    let spine_sources = m.sources_below("Spine").unwrap();
    assert!(spine_sources.contains(&"SYNAPSE".to_string()));
    assert!(spine_sources.contains(&"NCMIR".to_string()));
    // Dendrite cone: both labs again (each studies its own dendrites).
    let dendrite_sources = m.sources_below("Dendrite").unwrap();
    assert!(dendrite_sources.contains(&"SYNAPSE".to_string()));
    assert!(dendrite_sources.contains(&"NCMIR".to_string()));
}

#[test]
fn views_over_materialized_federation() {
    let mut m = build_scenario(&ScenarioParams {
        senselab_rows: 8,
        ncmir_rows: 12,
        synapse_rows: 8,
        noise_sources: 0,
        ..Default::default()
    });
    // An IVD joining two worlds at the conceptual level: the anatomical
    // concepts from which both labs' measurement locations are reachable
    // (recursive traversal of the inferable direct links plus isa
    // refinement, as in the paper's "region of correspondence").
    m.define_view(
        "reach(X, Y) :- has_a_star(X, Y).
         reach(X, Y) :- reach(X, Z), has_a_star(Z, Y).
         reach(X, Y) :- reach(X, Z), dm_isa(Y, Z).
         co_studied(L) :- X : protein_amount, X[location -> L1],
                          Y : spine_morphometry, Y[location -> L2],
                          reach(L, L1), reach(L, L2).",
    )
    .unwrap();
    m.materialize_all().unwrap();
    let rows = m.query_fl("co_studied(L)").unwrap();
    // Both labs' structures hang off shared anatomy, so some common
    // ancestor concept must co-study them.
    assert!(!rows.is_empty());
}

#[test]
fn constraint_mode_mediator_reports_incompleteness() {
    // Run the scenario map in Constraint mode with a single bare neuron:
    // the DM demands compartments, so witnesses appear.
    let mut m = Mediator::new(scenario_domain_map(), ExecMode::Constraint);
    let mut w = MemoryWrapper::new("TINY");
    w.caps.push(Capability {
        class: "cells".into(),
        pushable: vec![],
    });
    w.anchor_decls.push(Anchor::Fixed {
        class: "cells".into(),
        concept: "Neuron".into(),
    });
    w.add_row("cells", "c1", vec![("size", GcmValue::Int(3))]);
    m.register(Arc::new(w)).unwrap();
    m.define_view(r#"X : "Neuron" :- X : cells."#).unwrap();
    m.materialize_all().unwrap();
    let ws = m.witnesses().unwrap();
    assert!(
        ws.iter()
            .any(|x| x.contains("Neuron") && x.contains("TINY.c1")),
        "{ws:?}"
    );
}

#[test]
fn assertion_mode_mediator_invents_placeholders() {
    let mut m = Mediator::new(scenario_domain_map(), ExecMode::Assertion);
    let mut w = MemoryWrapper::new("TINY");
    w.caps.push(Capability {
        class: "cells".into(),
        pushable: vec![],
    });
    w.anchor_decls.push(Anchor::Fixed {
        class: "cells".into(),
        concept: "Neuron".into(),
    });
    w.add_row("cells", "c1", vec![]);
    m.register(Arc::new(w)).unwrap();
    m.define_view(r#"X : "Neuron" :- X : cells."#).unwrap();
    m.materialize_all().unwrap();
    assert!(m.witnesses().unwrap().is_empty());
    // The neuron got a virtual compartment.
    let rows = m.query_fl(r#"relinst_sk("has", X, Y)"#).unwrap();
    assert!(!rows.is_empty());
}

// ---------------------------------------------------------------------
// Fault tolerance: outages, retries, breakers, quarantine, timeouts.
// ---------------------------------------------------------------------

use kind::core::{
    run_section5 as s5, BreakerConfig, BreakerState, Fault, MediatorError, RetryPolicy,
    SourceError, SourceOutcome, SourcePolicy, SourceQuery,
};
use kind::sources::build_scenario_with_faults;

#[test]
fn transient_outage_recovers_via_retries() {
    // Baseline: the fault-free answer.
    let mut clean = build_scenario(&ScenarioParams::default());
    let baseline = s5(&mut clean, &NeuroSchema::default(), &default_query(), true).unwrap();
    // SENSELAB fails its first two calls; the default policy retries up
    // to 3 attempts, so the plan still gets its step-1 bindings.
    let (mut m, injector) =
        build_scenario_with_faults(&ScenarioParams::default(), vec![Fault::FailFirst(2)]);
    let trace = s5(&mut m, &NeuroSchema::default(), &default_query(), true).unwrap();
    assert_eq!(trace.step1_pairs, baseline.step1_pairs);
    assert_eq!(trace.distribution, baseline.distribution);
    assert!(trace.report.is_complete(), "{}", trace.report.summary());
    assert_eq!(
        trace.report.source("SENSELAB").unwrap().outcome,
        SourceOutcome::Retried { retries: 2 }
    );
    assert_eq!(injector.calls(), 3, "two failures plus the success");
    assert_eq!(trace.stats.retries, 2);
}

#[test]
fn senselab_outage_degrades_then_recovers() {
    let mut clean = build_scenario(&ScenarioParams::default());
    let baseline = s5(&mut clean, &NeuroSchema::default(), &default_query(), true).unwrap();
    // Three failures exhaust the default 3-attempt budget: a full outage.
    let (mut m, _injector) =
        build_scenario_with_faults(&ScenarioParams::default(), vec![Fault::FailFirst(3)]);
    let t1 = s5(&mut m, &NeuroSchema::default(), &default_query(), true).unwrap();
    // Partial answer: no step-1 bindings, so nothing downstream — but the
    // plan *returns* and says exactly what is missing.
    assert!(t1.step1_pairs.is_empty());
    assert!(t1.distribution.is_empty());
    assert!(!t1.report.is_complete(), "{}", t1.report.summary());
    assert!(matches!(
        t1.report.source("SENSELAB").unwrap().outcome,
        SourceOutcome::Failed {
            error: SourceError::Unavailable { .. }
        }
    ));
    assert_eq!(t1.stats.failures, 1);
    // The outage ends (the schedule is exhausted): the same mediator
    // recovers to the complete answer.
    let t2 = s5(&mut m, &NeuroSchema::default(), &default_query(), true).unwrap();
    assert!(t2.report.is_complete(), "{}", t2.report.summary());
    assert_eq!(t2.step1_pairs, baseline.step1_pairs);
    assert_eq!(t2.distribution, baseline.distribution);
}

#[test]
fn tripped_breaker_skips_source_without_querying() {
    // SENSELAB always fails; a tight policy trips the breaker fast.
    let (mut m, injector) =
        build_scenario_with_faults(&ScenarioParams::default(), vec![Fault::EveryKth(1)]);
    m.set_source_policy(
        "SENSELAB",
        SourcePolicy {
            retry: RetryPolicy::none(),
            timeout_ms: 0,
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown_ms: 1_000,
            },
            ..SourcePolicy::default()
        },
    );
    let q = SourceQuery::scan("neurotransmission");
    assert!(m.fetch("SENSELAB", &q).is_err());
    assert!(m.fetch("SENSELAB", &q).is_err()); // second failure trips it
    assert!(matches!(
        m.breaker_state("SENSELAB"),
        Some(BreakerState::Open { .. })
    ));
    // While open, fetches are refused WITHOUT contacting the wrapper.
    let calls_before = injector.calls();
    assert!(m.fetch("SENSELAB", &q).is_err());
    assert_eq!(
        injector.calls(),
        calls_before,
        "breaker open: no wrapper call"
    );
    // A whole plan run degrades the same way: SENSELAB is reported
    // skipped-by-breaker and the answer flagged incomplete.
    let t = s5(&mut m, &NeuroSchema::default(), &default_query(), true).unwrap();
    assert!(!t.report.is_complete(), "{}", t.report.summary());
    assert_eq!(
        t.report.source("SENSELAB").unwrap().outcome,
        SourceOutcome::SkippedByBreaker
    );
    assert_eq!(injector.calls(), calls_before, "still no wrapper call");
    // After the cooldown (virtual time!) a half-open trial goes through —
    // it fails, so the breaker re-opens.
    m.clock().advance_ms(1_000);
    assert!(m.fetch("SENSELAB", &q).is_err());
    assert_eq!(
        injector.calls(),
        calls_before + 1,
        "half-open trial contacted it"
    );
    assert!(matches!(
        m.breaker_state("SENSELAB"),
        Some(BreakerState::Open { .. })
    ));
}

#[test]
fn corrupted_rows_are_quarantined_with_diagnostics() {
    // Chaos mode: a seeded 30% of SENSELAB's rows arrive mangled against
    // its declared CM. Materialization quarantines them and says why.
    let (mut m, _injector) = build_scenario_with_faults(
        &ScenarioParams::default(),
        vec![Fault::CorruptRows {
            seed: 9,
            corrupt_per_mille: 300,
        }],
    );
    m.materialize_all().unwrap();
    let report = m.report().clone();
    assert!(!report.quarantined.is_empty(), "some corruption is caught");
    assert!(!report.is_complete());
    assert!(report.quarantined.iter().all(|q| q.source == "SENSELAB"));
    assert!(report
        .quarantined
        .iter()
        .all(|q| q.class == "neurotransmission" && !q.reason.is_empty()));
    // Accounting holds: every shipped row was either accepted or
    // quarantined.
    let sl = report.source("SENSELAB").unwrap();
    assert_eq!(
        sl.rows + sl.quarantined,
        ScenarioParams::default().senselab_rows
    );
    // The healthy sources are untouched.
    assert_eq!(report.source("NCMIR").unwrap().outcome, SourceOutcome::Ok);
    assert_eq!(report.source("NCMIR").unwrap().quarantined, 0);
}

#[test]
fn slow_source_times_out_on_the_virtual_clock() {
    let (mut m, _injector) = build_scenario_with_faults(
        &ScenarioParams::default(),
        vec![Fault::Slow { delay_ms: 500 }],
    );
    m.set_source_policy(
        "SENSELAB",
        SourcePolicy {
            retry: RetryPolicy::none(),
            timeout_ms: 200,
            breaker: BreakerConfig::default(),
            ..SourcePolicy::default()
        },
    );
    let err = m
        .fetch("SENSELAB", &SourceQuery::scan("neurotransmission"))
        .unwrap_err();
    match err {
        MediatorError::Source {
            name,
            error:
                SourceError::Timeout {
                    elapsed_ms,
                    budget_ms,
                },
        } => {
            assert_eq!(name, "SENSELAB");
            assert_eq!(elapsed_ms, 500);
            assert_eq!(budget_ms, 200);
        }
        other => panic!("expected a timeout, got {other}"),
    }
}

#[test]
fn on_demand_answer_carries_degradation_report() {
    // The generalized `answer` path degrades like the hand-built plan:
    // a dead SENSELAB drops out of the answer but not out of the report.
    let (mut m, _injector) = build_scenario_with_faults(
        &ScenarioParams {
            noise_sources: 0,
            ..Default::default()
        },
        vec![Fault::FailFirst(u32::MAX)],
    );
    let ans = m
        .answer("rat_nt(X) :- X : neurotransmission, X[organism -> \"rat\"].")
        .unwrap();
    assert!(ans.rows.is_empty());
    assert!(!ans.report.is_complete(), "{}", ans.report.summary());
    assert_eq!(ans.report.degraded_sources(), vec!["SENSELAB"]);
    // With the protein class the healthy NCMIR still answers fully.
    let ans2 = m
        .answer("calcium(X) :- X : protein_amount, X[ion_bound -> \"calcium\"].")
        .unwrap();
    assert!(!ans2.rows.is_empty());
    assert!(matches!(
        ans2.report.source("NCMIR").unwrap().outcome,
        SourceOutcome::Ok
    ));
}
