//! Integration tests spanning the whole stack: wrappers → plug-ins → GCM
//! → domain map → mediator → query plan.

use kind::core::{
    protein_distribution, run_section5, Anchor, Capability, Mediator, MemoryWrapper, NeuroSchema,
    Section5Query,
};
use kind::dm::ExecMode;
use kind::gcm::GcmValue;
use kind::sources::{build_scenario, scenario_domain_map, ScenarioParams};
use std::rc::Rc;

fn default_query() -> Section5Query {
    Section5Query {
        organism: "rat".into(),
        transmitting_compartment: "Parallel_Fiber".into(),
        ion: "calcium".into(),
    }
}

#[test]
fn scenario_registers_through_three_different_formalisms() {
    let m = build_scenario(&ScenarioParams::default());
    let formalisms: Vec<&str> = m
        .sources()
        .iter()
        .map(|s| s.wrapper.formalism())
        .collect();
    assert!(formalisms.contains(&"er"));
    assert!(formalisms.contains(&"uxf"));
    assert!(formalisms.contains(&"rdfs"));
    assert!(formalisms.contains(&"gcm"));
}

#[test]
fn section5_answers_are_stable_across_seeds_structurally() {
    for seed in [1, 7, 2001] {
        let mut m = build_scenario(&ScenarioParams {
            seed,
            ..Default::default()
        });
        let trace = run_section5(&mut m, &NeuroSchema::default(), &default_query(), true).unwrap();
        assert_eq!(trace.selected_sources, vec!["NCMIR".to_string()], "seed {seed}");
        assert_eq!(trace.root.as_deref(), Some("Purkinje_Cell"), "seed {seed}");
        assert!(!trace.distribution.is_empty(), "seed {seed}");
    }
}

#[test]
fn semantic_index_prunes_proportionally_to_noise() {
    // With k irrelevant sources, the blind plan contacts k more sources;
    // the indexed plan stays constant.
    let mut indexed_queries = Vec::new();
    let mut blind_queries = Vec::new();
    for noise in [0usize, 4, 8] {
        let params = ScenarioParams {
            noise_sources: noise,
            ..Default::default()
        };
        let mut m = build_scenario(&params);
        let t = run_section5(&mut m, &NeuroSchema::default(), &default_query(), true).unwrap();
        indexed_queries.push(t.stats.source_queries);
        let mut m2 = build_scenario(&params);
        let t2 = run_section5(&mut m2, &NeuroSchema::default(), &default_query(), false).unwrap();
        blind_queries.push(t2.stats.source_queries);
    }
    assert_eq!(indexed_queries[0], indexed_queries[2], "indexed plan flat");
    assert!(
        blind_queries[2] > blind_queries[0],
        "blind plan grows with noise: {blind_queries:?}"
    );
}

#[test]
fn example4_distribution_from_cerebellum_root() {
    // The paper's demo call: P = "cerebellum", Y = "Ryanodine_Receptor".
    let mut m = build_scenario(&ScenarioParams::default());
    let dist = protein_distribution(
        &mut m,
        &NeuroSchema::default(),
        "Ryanodine_Receptor",
        "Cerebellum",
    )
    .unwrap();
    assert!(!dist.is_empty());
    // The cerebellum total dominates everything below it.
    let root_total = dist
        .iter()
        .find(|(c, _)| c == "Cerebellum")
        .map(|(_, t)| *t)
        .expect("root present");
    assert!(dist.iter().all(|(_, t)| *t <= root_total));
    // Purkinje spine amounts (if any) roll up into the dendrite and cell.
    let get = |c: &str| dist.iter().find(|(n, _)| n == c).map(|(_, t)| *t).unwrap_or(0);
    assert!(get("Purkinje_Dendrite") >= get("Purkinje_Spine"));
    assert!(get("Purkinje_Cell") >= get("Purkinje_Dendrite"));
}

#[test]
fn loose_federation_correlates_worlds_through_anchors() {
    // Example 1: the two labs' data never joins directly; the domain map
    // correlates them. SYNAPSE anchors at Pyramidal structures, NCMIR at
    // Purkinje structures — both under Spiny_Neuron-related cones.
    let m = build_scenario(&ScenarioParams::default());
    let spine_sources = m.sources_below("Spine").unwrap();
    assert!(spine_sources.contains(&"SYNAPSE".to_string()));
    assert!(spine_sources.contains(&"NCMIR".to_string()));
    // Dendrite cone: both labs again (each studies its own dendrites).
    let dendrite_sources = m.sources_below("Dendrite").unwrap();
    assert!(dendrite_sources.contains(&"SYNAPSE".to_string()));
    assert!(dendrite_sources.contains(&"NCMIR".to_string()));
}

#[test]
fn views_over_materialized_federation() {
    let mut m = build_scenario(&ScenarioParams {
        senselab_rows: 8,
        ncmir_rows: 12,
        synapse_rows: 8,
        noise_sources: 0,
        ..Default::default()
    });
    // An IVD joining two worlds at the conceptual level: the anatomical
    // concepts from which both labs' measurement locations are reachable
    // (recursive traversal of the inferable direct links plus isa
    // refinement, as in the paper's "region of correspondence").
    m.define_view(
        "reach(X, Y) :- has_a_star(X, Y).
         reach(X, Y) :- reach(X, Z), has_a_star(Z, Y).
         reach(X, Y) :- reach(X, Z), dm_isa(Y, Z).
         co_studied(L) :- X : protein_amount, X[location -> L1],
                          Y : spine_morphometry, Y[location -> L2],
                          reach(L, L1), reach(L, L2).",
    )
    .unwrap();
    m.materialize_all().unwrap();
    let rows = m.query_fl("co_studied(L)").unwrap();
    // Both labs' structures hang off shared anatomy, so some common
    // ancestor concept must co-study them.
    assert!(!rows.is_empty());
}

#[test]
fn constraint_mode_mediator_reports_incompleteness() {
    // Run the scenario map in Constraint mode with a single bare neuron:
    // the DM demands compartments, so witnesses appear.
    let mut m = Mediator::new(scenario_domain_map(), ExecMode::Constraint);
    let mut w = MemoryWrapper::new("TINY");
    w.caps.push(Capability {
        class: "cells".into(),
        pushable: vec![],
    });
    w.anchor_decls.push(Anchor::Fixed {
        class: "cells".into(),
        concept: "Neuron".into(),
    });
    w.add_row("cells", "c1", vec![("size", GcmValue::Int(3))]);
    m.register(Rc::new(w)).unwrap();
    m.define_view(r#"X : "Neuron" :- X : cells."#).unwrap();
    m.materialize_all().unwrap();
    let ws = m.witnesses().unwrap();
    assert!(
        ws.iter().any(|x| x.contains("Neuron") && x.contains("TINY.c1")),
        "{ws:?}"
    );
}

#[test]
fn assertion_mode_mediator_invents_placeholders() {
    let mut m = Mediator::new(scenario_domain_map(), ExecMode::Assertion);
    let mut w = MemoryWrapper::new("TINY");
    w.caps.push(Capability {
        class: "cells".into(),
        pushable: vec![],
    });
    w.anchor_decls.push(Anchor::Fixed {
        class: "cells".into(),
        concept: "Neuron".into(),
    });
    w.add_row("cells", "c1", vec![]);
    m.register(Rc::new(w)).unwrap();
    m.define_view(r#"X : "Neuron" :- X : cells."#).unwrap();
    m.materialize_all().unwrap();
    assert!(m.witnesses().unwrap().is_empty());
    // The neuron got a virtual compartment.
    let rows = m.query_fl(r#"relinst_sk("has", X, Y)"#).unwrap();
    assert!(!rows.is_empty());
}
