//! Integration tests for the extensions beyond the paper's prototype
//! (DESIGN.md, "Extensions"): on-demand queries, explanations, templates,
//! derived anchors, DM round-trips, and the FO constraint library.

use kind::core::{Mediator, MemoryWrapper};
use kind::dm::{figures, to_axioms, DomainMap, ExecMode, Resolved};
use kind::gcm::GcmValue;
use kind::sources::{build_scenario, ScenarioParams};
use std::sync::Arc;

#[test]
fn answer_over_the_full_scenario_prunes_sources() {
    let mut m = build_scenario(&ScenarioParams::default());
    let ans = m
        .answer("hot(P) :- X : protein_amount, X[protein_name -> P], X[amount -> A], A > 90.")
        .unwrap();
    // Only protein-exporting sources were contacted; SENSELAB and
    // SYNAPSE classes were never fetched.
    assert!(ans
        .sources
        .iter()
        .all(|s| s != "SENSELAB" && s != "SYNAPSE"));
    assert!(ans.sources.contains(&"NCMIR".to_string()));
}

#[test]
fn explanations_for_scenario_view_answers() {
    let mut m = build_scenario(&ScenarioParams {
        senselab_rows: 8,
        ncmir_rows: 8,
        synapse_rows: 4,
        noise_sources: 0,
        ..Default::default()
    });
    m.define_view(
        "calcium_site(L) :- X : protein_amount, X[ion_bound -> calcium], X[location -> L].",
    )
    .unwrap();
    m.materialize_all().unwrap();
    let rows = m.query_fl("calcium_site(L)").unwrap();
    assert!(!rows.is_empty());
    let loc = m.show(&rows[0][0]);
    let why = m
        .explain_fl(&format!("calcium_site({loc:?})"))
        .unwrap()
        .expect("answer explains");
    assert!(why.contains("[rule #"), "{why}");
    assert!(why.contains("[edb]"), "{why}");
    assert!(why.contains("mi("), "{why}");
}

#[test]
fn dm_round_trip_through_axiom_text_preserves_scenario_semantics() {
    let dm = kind::sources::scenario_domain_map();
    let text = to_axioms(&dm);
    let mut reloaded = DomainMap::new();
    kind::dm::load_axioms(&mut reloaded, &text).unwrap();
    let r1 = Resolved::new(&dm);
    let r2 = Resolved::new(&reloaded);
    // The §5-critical inferences survive the round trip.
    let pc1 = dm.lookup("Purkinje_Cell").unwrap();
    let pd1 = dm.lookup("Purkinje_Dendrite").unwrap();
    let pc2 = reloaded.lookup("Purkinje_Cell").unwrap();
    let pd2 = reloaded.lookup("Purkinje_Dendrite").unwrap();
    assert_eq!(
        r1.partonomy_lub("has_a", &[pc1, pd1])
            .and_then(|n| dm.name(n)),
        r2.partonomy_lub("has_a", &[pc2, pd2])
            .and_then(|n| reloaded.name(n))
    );
}

#[test]
fn figure3_wire_trip_then_registration() {
    // Ship Figure 3's base map as axiom text "over the wire", rebuild a
    // mediator around it, and run the MyNeuron registration flow.
    let wire_text = to_axioms(&figures::figure3_base());
    let mut dm = DomainMap::new();
    kind::dm::load_axioms(&mut dm, &wire_text).unwrap();
    let mut med = Mediator::new(dm, ExecMode::Assertion);
    let mut w = MemoryWrapper::new("MYLAB");
    w.dm_axioms = figures::FIGURE3_REGISTRATION_AXIOMS.to_string();
    w.caps.push(kind::core::Capability {
        class: "cells".into(),
        pushable: vec![],
    });
    w.anchor_decls.push(kind::core::Anchor::Fixed {
        class: "cells".into(),
        concept: "MyNeuron".into(),
    });
    w.add_row("cells", "c1", vec![("v", GcmValue::Int(1))]);
    med.register(Arc::new(w)).unwrap();
    assert_eq!(
        med.sources_below("Medium_Spiny_Neuron").unwrap(),
        vec!["MYLAB".to_string()]
    );
}

#[test]
fn constraint_library_over_mediated_data() {
    // Functional-method discipline on a mediated attribute: the same
    // object reporting two soma sizes is an inconsistency.
    let mut m = Mediator::new(figures::figure1(), ExecMode::Assertion);
    let mut w = MemoryWrapper::new("L");
    w.caps.push(kind::core::Capability {
        class: "cells".into(),
        pushable: vec![],
    });
    w.anchor_decls.push(kind::core::Anchor::Fixed {
        class: "cells".into(),
        concept: "Neuron".into(),
    });
    w.add_row("cells", "n1", vec![("soma_size", GcmValue::Int(10))]);
    m.register(Arc::new(w)).unwrap();
    m.materialize_all().unwrap();
    // Conflicting measurement arrives later (e.g. from another batch).
    m.load_row(
        "L",
        "cells",
        &kind::core::ObjectRow {
            id: "n1".into(),
            attrs: vec![("soma_size".into(), GcmValue::Int(12))],
        },
    )
    .unwrap();
    // (load_row re-adds inst; mi now has two values.)
    // Install the FD check directly on the mediator's base... via a view
    // is not possible (needs the fd_method fact), so assert through the
    // datalog escape hatch is out of scope here; instead check at the
    // GcmBase level:
    let mut base = kind::gcm::GcmBase::new();
    base.apply(
        &kind::gcm::ConceptualModel::new("L")
            .method_inst("n1", "soma_size", GcmValue::Int(10))
            .method_inst("n1", "soma_size", GcmValue::Int(12)),
    )
    .unwrap();
    kind::gcm::require_functional(base.flogic_mut(), "soma_size").unwrap();
    let model = base.run().unwrap();
    assert!(!base.witnesses(&model).is_empty());
}

#[test]
fn subsumption_selection_on_scenario_axioms() {
    // Rebuild the scenario mediator from axiom text so the reasoner has
    // the axioms, then select by expression.
    let axiom_text = format!(
        "{}{}",
        figures::FIGURE1_AXIOMS,
        kind::sources::NEURO_ANATOMY_AXIOMS
    );
    let mut m = Mediator::from_axioms(&axiom_text, ExecMode::Assertion).unwrap();
    m.register(kind::sources::ncmir_wrapper(1, 10)).unwrap();
    m.register(kind::sources::synapse_wrapper(1, 10)).unwrap();
    // "Things that are dendrites": both labs measure dendrites of their
    // own cell types.
    let ds = m.select_sources_by_expression("Dendrite").unwrap();
    assert_eq!(ds.len(), 2);
    // "Spiny neurons": anchored location concepts include Purkinje_Cell /
    // Pyramidal_Cell which are told spiny neurons.
    let spiny = m.select_sources_by_expression("Spiny_Neuron").unwrap();
    assert_eq!(spiny.len(), 2);
    // A concept neither lab touches.
    let none = m.select_sources_by_expression("Neurotransmission").unwrap();
    assert!(none.is_empty());
}
