//! Property-based tests over the core data structures and invariants.

use kind::core::{run_section5, Fault, FetchMode, NeuroSchema, Section5Query};
use kind::datalog::{Engine, EvalOptions, EvalStats, FactStore, Model};
use kind::dm::{DomainMap, Resolved};
use kind::sources::{
    build_scenario, build_scenario_with_faults, ncmir_update_rows, ScenarioParams,
};
use kind::xml::{Element, Node};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashSet};

// ---------- Datalog: transitive closure vs. reference BFS --------------

fn reference_tc(n: usize, edges: &[(usize, usize)]) -> HashSet<(usize, usize)> {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
    }
    let mut out = HashSet::new();
    for s in 0..n {
        let mut seen = vec![false; n];
        let mut stack = vec![s];
        while let Some(x) = stack.pop() {
            for &y in &adj[x] {
                if !seen[y] {
                    seen[y] = true;
                    out.insert((s, y));
                    stack.push(y);
                }
            }
        }
    }
    out
}

fn tc_engine(edges: &[(usize, usize)], semi_naive: bool) -> HashSet<(usize, usize)> {
    let mut e = Engine::new();
    e.load(
        "tc(X,Y) :- edge(X,Y).
         tc(X,Y) :- tc(X,Z), edge(Z,Y).",
    )
    .unwrap();
    for &(a, b) in edges {
        let pa = e.constant(&format!("n{a}"));
        let pb = e.constant(&format!("n{b}"));
        let edge = e.sym("edge");
        e.add_fact(edge, vec![pa, pb]).unwrap();
    }
    let m = e
        .run(&EvalOptions {
            semi_naive,
            ..Default::default()
        })
        .unwrap();
    let mut e2 = e.clone();
    e2.query_model(&m, "tc(X, Y)")
        .unwrap()
        .into_iter()
        .map(|row| {
            let parse = |t: &kind::datalog::Term| -> usize { e.show(t)[1..].parse().unwrap() };
            (parse(&row[0]), parse(&row[1]))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn datalog_tc_matches_reference(
        edges in prop::collection::vec((0usize..12, 0usize..12), 0..40)
    ) {
        let expect = reference_tc(12, &edges);
        let got = tc_engine(&edges, true);
        prop_assert_eq!(&got, &expect);
    }

    #[test]
    fn seminaive_equals_naive(
        edges in prop::collection::vec((0usize..10, 0usize..10), 0..30)
    ) {
        prop_assert_eq!(tc_engine(&edges, true), tc_engine(&edges, false));
    }

    // ---------- Domain map: lub / closure invariants --------------------

    #[test]
    fn lub_is_common_ancestor_and_minimal(
        // A random forest: parent of node i+1 is drawn modulo i+1, which
        // keeps the hierarchy acyclic.
        parents in prop::collection::vec(0usize..20, 19)
    ) {
        let mut dm = DomainMap::new();
        for i in 0..20usize {
            dm.concept(&format!("c{i}"));
        }
        for (i, &p) in parents.iter().enumerate() {
            let child = i + 1; // node 0 is the root-ish node
            let parent = p % child; // strictly smaller: acyclic
            dm.isa(&format!("c{child}"), &format!("c{parent}"));
        }
        let r = Resolved::new(&dm);
        let a = dm.lookup("c7").unwrap();
        let b = dm.lookup("c13").unwrap();
        if let Some(l) = r.lub(&[a, b]) {
            prop_assert!(r.ancestors(a).contains(&l));
            prop_assert!(r.ancestors(b).contains(&l));
            // Minimality: no common ancestor strictly below l.
            let common: Vec<_> = r
                .ancestors(a)
                .intersection(&r.ancestors(b))
                .copied()
                .collect();
            for o in common {
                if o != l && r.is_subconcept(o, l) {
                    prop_assert!(r.is_subconcept(l, o), "found strictly-lower common ancestor");
                }
            }
        }
    }

    #[test]
    fn dc_contains_base_and_tc_contains_dc(
        isa in prop::collection::vec((0usize..10, 0usize..10), 0..15),
        roles in prop::collection::vec((0usize..10, 0usize..10), 0..15)
    ) {
        let mut dm = DomainMap::new();
        for i in 0..10usize {
            dm.concept(&format!("c{i}"));
        }
        // Only downward-pointing isa edges (child id > parent id) keep
        // the hierarchy acyclic, matching real domain maps.
        for &(a, b) in &isa {
            if a > b {
                dm.isa(&format!("c{a}"), &format!("c{b}"));
            }
        }
        for &(a, b) in &roles {
            dm.ex(&format!("c{a}"), "has_a", &format!("c{b}"));
        }
        let r = Resolved::new(&dm);
        let base: HashSet<_> = r.role_pairs("has_a").iter().copied().collect();
        let dc: HashSet<_> = r.dc_pairs("has_a").into_iter().collect();
        let tc: HashSet<_> = r.tc_of_dc("has_a").into_iter().collect();
        prop_assert!(base.is_subset(&dc), "dc must contain the base role");
        prop_assert!(dc.is_subset(&tc), "tc(dc) must contain dc");
    }

    #[test]
    fn downward_closure_is_reflexive_and_within_map(
        roles in prop::collection::vec((0usize..8, 0usize..8), 0..12)
    ) {
        let mut dm = DomainMap::new();
        for i in 0..8usize {
            dm.concept(&format!("c{i}"));
        }
        for &(a, b) in &roles {
            dm.ex(&format!("c{a}"), "has_a", &format!("c{b}"));
        }
        let r = Resolved::new(&dm);
        let root = dm.lookup("c0").unwrap();
        let region = r.downward_closure("has_a", root);
        prop_assert!(region.contains(&root));
        let set: HashSet<_> = region.iter().collect();
        prop_assert_eq!(set.len(), region.len(), "no duplicates");
    }

    // ---------- Faults: seeded schedules are deterministic ---------------

    #[test]
    fn fault_schedules_replay_byte_identically(
        seed in 0u64..u64::MAX,
        fail_per_mille in 0u16..600,
        corrupt_per_mille in 0u16..400,
    ) {
        // Two mediators built from the same params and the same seeded
        // fault schedule must produce *equal* answers AND equal reports —
        // retries, quarantines, breaker skips, everything.
        let faults = || vec![
            Fault::Flaky { seed, fail_per_mille },
            Fault::CorruptRows { seed: seed.rotate_left(17), corrupt_per_mille },
        ];
        let params = ScenarioParams { noise_sources: 1, ..Default::default() };
        let run = || {
            let (mut m, _inj) = build_scenario_with_faults(&params, faults());
            let schema = NeuroSchema::default();
            let q = Section5Query {
                organism: "rat".into(),
                transmitting_compartment: "Parallel_Fiber".into(),
                ion: "calcium".into(),
            };
            run_section5(&mut m, &schema, &q, true).unwrap()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(&a.report, &b.report);
        prop_assert_eq!(a, b);
    }

    // ---------- XML: serialize/parse roundtrip --------------------------

    #[test]
    fn xml_roundtrip(tree in xml_tree(3)) {
        let text = kind::xml::to_string(&tree);
        let doc = kind::xml::parse(&text).unwrap();
        prop_assert_eq!(doc.root, tree);
    }
}

// ---------- Eval options: every toggle combo yields the same model ------

/// All 2⁴ combinations of the optimization layers: the magic-sets demand
/// transformation, semi-naive evaluation, join reordering, and the
/// cross-query base cache. Every combination must yield the same model.
fn all_eval_combos() -> Vec<EvalOptions> {
    let mut v = Vec::new();
    for &magic_sets in &[false, true] {
        for &semi_naive in &[false, true] {
            for &join_reorder in &[false, true] {
                for &base_cache in &[false, true] {
                    v.push(EvalOptions {
                        magic_sets,
                        semi_naive,
                        join_reorder,
                        base_cache,
                        ..Default::default()
                    });
                }
            }
        }
    }
    v
}

/// Renders a model's true and undefined facts name-resolved, so the sets
/// are comparable across separately-built engines.
fn rendered_model(e: &Engine, m: &Model) -> (BTreeSet<String>, BTreeSet<String>) {
    let render = |fs: &FactStore| {
        fs.iter()
            .map(|(p, t)| {
                let args: Vec<String> = t.iter().map(|x| e.show(x)).collect();
                format!("{}({})", e.name(p), args.join(","))
            })
            .collect::<BTreeSet<String>>()
    };
    (render(&m.facts), render(&m.undefined))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A recursive program with well-founded negation must compute the
    /// same true *and* undefined facts under every combination of
    /// `{magic_sets, semi_naive, join_reorder, base_cache}` (the WFS path
    /// never applies the magic rewrite, so toggling it must be a no-op).
    #[test]
    fn eval_toggles_preserve_recursive_wfs_model(
        moves in prop::collection::vec((0usize..7, 0usize..7), 0..20)
    ) {
        let mut reference: Option<(BTreeSet<String>, BTreeSet<String>)> = None;
        for opts in all_eval_combos() {
            let mut e = Engine::new();
            e.load(
                "reach(X) :- start(X).
                 reach(Y) :- reach(X), move(X, Y).
                 win(X) :- move(X, Y), not win(Y).",
            )
            .unwrap();
            let start = e.constant("n0");
            let sp = e.sym("start");
            e.add_fact(sp, vec![start]).unwrap();
            for &(a, b) in &moves {
                let pa = e.constant(&format!("n{a}"));
                let pb = e.constant(&format!("n{b}"));
                let mv = e.sym("move");
                e.add_fact(mv, vec![pa, pb]).unwrap();
            }
            let m = e.run(&opts).unwrap();
            let r = rendered_model(&e, &m);
            match &reference {
                None => reference = Some(r),
                Some(x) => prop_assert_eq!(&r, x),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// End-to-end: on the multiple-worlds scenario, `answer()` returns
    /// identical tuples under every optimization-layer combination —
    /// including repeat queries, which take the seeded warm path when
    /// `base_cache` is on.
    #[test]
    fn answer_agrees_across_all_eval_option_combos(seed in 0u64..1000) {
        let params = ScenarioParams {
            seed,
            senselab_rows: 4,
            ncmir_rows: 6,
            synapse_rows: 4,
            noise_sources: 1,
            noise_rows: 3,
            ..Default::default()
        };
        let q1 = "big(P, A) :- X : protein_amount, X[protein_name -> P], \
                  X[amount -> A], A >= 25.";
        let q2 = "pair(P, N) :- X : protein_amount, X[protein_name -> P], \
                  Y : neurotransmission, Y[neurotransmitter -> N].";
        let mut reference: Option<Vec<BTreeSet<String>>> = None;
        for opts in all_eval_combos() {
            let mut m = build_scenario(&params);
            m.set_eval_options(opts);
            let mut results = Vec::new();
            // q1 repeats: the second run reuses the warm base cache.
            for q in [q1, q2, q1] {
                let ans = m.answer(q).unwrap();
                let rows: BTreeSet<String> = ans
                    .rows
                    .iter()
                    .map(|r| {
                        r.iter().map(|t| m.show(t)).collect::<Vec<_>>().join(",")
                    })
                    .collect();
                results.push(rows);
            }
            match &reference {
                None => reference = Some(results),
                Some(x) => prop_assert_eq!(&results, x),
            }
        }
    }
}

/// Strategy for random XML elements (names from a safe alphabet, text
/// avoiding pure whitespace which the parser deliberately drops).
fn xml_tree(depth: u32) -> impl Strategy<Value = Element> {
    let name = "[a-z][a-z0-9]{0,6}";
    let attr_val = "[ -~&&[^<>&\"]]{0,12}";
    let leaf = (name, prop::collection::vec((name, attr_val), 0..3)).prop_map(|(n, attrs)| {
        let mut e = Element::new(n);
        for (k, v) in attrs {
            // Attribute keys must be unique for a stable roundtrip.
            if e.attr(&k).is_none() {
                e.attrs.push((k, v));
            }
        }
        e
    });
    leaf.prop_recursive(depth, 24, 4, move |inner| {
        (
            "[a-z][a-z0-9]{0,6}",
            prop::collection::vec(
                prop_oneof![
                    inner.prop_map(Node::Element),
                    "[a-zA-Z<>&\"']{1,12}".prop_map(Node::Text),
                ],
                0..4,
            ),
        )
            .prop_map(|(n, children)| {
                let mut e = Element::new(n);
                // Adjacent text nodes merge on parse; pre-merge here.
                for c in children {
                    match (e.children.last_mut(), c) {
                        (Some(Node::Text(prev)), Node::Text(t)) => prev.push_str(&t),
                        (_, c) => e.children.push(c),
                    }
                }
                e
            })
    })
}

// ---------- Fetch plane: parallel == serial, byte for byte --------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole invariant of the two-phase pipeline: a fully parallel
    /// `materialize_all` (8 fetch-plane workers) produces a
    /// **byte-identical** evaluated model — same facts, same interner
    /// ordering — as the serial run, along with an identical degradation
    /// report and identical statistics. Holds under seeded fault
    /// schedules too: retries, quarantined rows, and (when `kill_source`
    /// is set) a source that fails outright and degrades to zero rows.
    /// Only *counter-based* faults are used here — `Slow` faults overlap
    /// virtual-clock advances across workers, which shifts timestamps
    /// (never row contents) and is documented in
    /// `Federation::fetch_parallel`.
    #[test]
    fn parallel_materialize_is_bit_identical_to_serial(
        seed in 0u64..u64::MAX,
        fail_first in 0u32..3,
        corrupt_per_mille in 0u16..400,
        kill in 0u32..2,
    ) {
        let kill_source = kill == 1;
        let faults = || vec![
            Fault::FailFirst(if kill_source { 1_000_000 } else { fail_first }),
            Fault::CorruptRows {
                seed: seed.rotate_left(17),
                corrupt_per_mille,
            },
        ];
        let run = |threads: usize, mode: FetchMode| {
            let params = ScenarioParams {
                seed,
                senselab_rows: 10,
                ncmir_rows: 15,
                synapse_rows: 10,
                noise_sources: 1,
                noise_rows: 5,
                fetch_threads: threads,
                fetch_mode: mode,
                ..Default::default()
            };
            let (mut m, _inj) = build_scenario_with_faults(&params, faults());
            m.materialize_all().unwrap();
            // Canonical, interner-sensitive rendering: raw symbol ids,
            // sorted (relation sets are hash sets, so `{:?}` on the
            // whole model is order-unstable even for one fixed run). If
            // parallel fetching changed the row-application order, the
            // interner would assign different ids and these strings
            // would diverge.
            let model = m.run().unwrap();
            let mut facts: Vec<String> = model
                .facts
                .iter()
                .map(|(p, t)| format!("{p:?}{t:?}"))
                .collect();
            facts.sort();
            (facts, m.report().clone(), m.stats())
        };
        let (serial_model, serial_report, serial_stats) = run(1, FetchMode::ScopedThreads);
        for (threads, mode) in [
            (8, FetchMode::ScopedThreads),
            (1, FetchMode::Overlapped),
            (8, FetchMode::Overlapped),
        ] {
            let (par_model, par_report, par_stats) = run(threads, mode);
            prop_assert_eq!(&serial_model, &par_model,
                "model diverges: threads={} mode={:?}", threads, mode);
            prop_assert_eq!(&serial_report, &par_report,
                "report diverges: threads={} mode={:?}", threads, mode);
            prop_assert_eq!(&serial_stats, &par_stats,
                "stats diverge: threads={} mode={:?}", threads, mode);
        }
    }
}

// ---------- Fetch transport: scoped == overlapped, byte for byte --------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// PR 10's tentpole invariant: with *virtual-clock* fault schedules
    /// in play — a seeded latency tail driving the hedge path, flaky
    /// failures driving retries and the circuit breaker, all under an
    /// end-to-end deadline — the full §5 answer, its degradation report
    /// (including quarantine counters), and the breaker's final state
    /// are exactly equal across `fetch_mode × worker count`. The
    /// overlapped executor may interleave parked attempts arbitrarily;
    /// none of it may show through to any observable.
    #[test]
    fn fetch_transport_is_invisible_under_faults_hedges_and_deadlines(
        seed in 0u64..u64::MAX,
        slow_per_mille in 0u16..800,
        fail_per_mille in 0u16..300,
        budget_choice in 0usize..3,
    ) {
        let budget = [0u64, 150, 600][budget_choice];
        let faults = || vec![
            Fault::SlowTail { seed, delay_ms: 30, slow_per_mille },
            Fault::Flaky { seed: seed.rotate_left(11), fail_per_mille },
        ];
        let run = |threads: usize, mode: FetchMode| {
            let params = ScenarioParams {
                senselab_rows: 10,
                ncmir_rows: 15,
                synapse_rows: 10,
                noise_sources: 1,
                noise_rows: 5,
                fetch_threads: threads,
                fetch_mode: mode,
                query_budget_ms: budget,
                hedge_after_ms: 10,
                ..Default::default()
            };
            let (mut m, _inj) = build_scenario_with_faults(&params, faults());
            let schema = NeuroSchema::default();
            let q = Section5Query {
                organism: "rat".into(),
                transmitting_compartment: "Parallel_Fiber".into(),
                ion: "calcium".into(),
            };
            let trace = run_section5(&mut m, &schema, &q, true).unwrap();
            (trace, m.breaker_state("SENSELAB"), m.report().clone())
        };
        let baseline = run(1, FetchMode::ScopedThreads);
        for (threads, mode) in [
            (8, FetchMode::ScopedThreads),
            (1, FetchMode::Overlapped),
            (8, FetchMode::Overlapped),
        ] {
            let got = run(threads, mode);
            prop_assert_eq!(&got, &baseline,
                "observables diverge: threads={} mode={:?}", threads, mode);
        }
    }
}

// ---------- Evaluate plane: parallel == serial, byte for byte -----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// PR 5's twin of the fetch-plane invariant above: the partitioned
    /// multi-threaded fixpoint produces a **bit-identical** model — same
    /// canonical fact set, same `EvalStats` (down to every index probe
    /// counter), same compiled `RulePlan`s — as the serial engine, for
    /// every `eval_threads ∈ {1,2,4,8}` crossed with the `semi_naive`
    /// and `join_reorder` toggles. The graphs are fat enough to cross the
    /// parallel work gate, so the partitioned path genuinely runs.
    #[test]
    fn parallel_eval_is_bit_identical_to_serial(
        edges in prop::collection::vec((0usize..25, 0usize..25), 100..160)
    ) {
        for &semi_naive in &[false, true] {
            for &join_reorder in &[false, true] {
                let run = |eval_threads: usize| {
                    let mut e = Engine::new();
                    e.load(
                        "tc(X,Y) :- edge(X,Y).
                         tc(X,Y) :- tc(X,Z), edge(Z,Y).",
                    )
                    .unwrap();
                    for &(a, b) in &edges {
                        let pa = e.constant(&format!("n{a}"));
                        let pb = e.constant(&format!("n{b}"));
                        let edge = e.sym("edge");
                        e.add_fact(edge, vec![pa, pb]).unwrap();
                    }
                    let m = e
                        .run(&EvalOptions {
                            semi_naive,
                            join_reorder,
                            eval_threads,
                            ..Default::default()
                        })
                        .unwrap();
                    let mut facts: Vec<String> = m
                        .facts
                        .iter()
                        .map(|(p, t)| format!("{p:?}{t:?}"))
                        .collect();
                    facts.sort();
                    let plans: Vec<_> = m
                        .profile
                        .strata
                        .iter()
                        .flat_map(|s| s.plans.clone())
                        .collect();
                    (facts, m.stats, plans)
                };
                let (serial_facts, serial_stats, serial_plans) = run(1);
                for threads in [2usize, 4, 8] {
                    let (facts, stats, plans) = run(threads);
                    prop_assert_eq!(&facts, &serial_facts,
                        "facts diverge: threads={} semi_naive={} join_reorder={}",
                        threads, semi_naive, join_reorder);
                    prop_assert_eq!(&stats, &serial_stats,
                        "stats diverge: threads={} semi_naive={} join_reorder={}",
                        threads, semi_naive, join_reorder);
                    prop_assert_eq!(&plans, &serial_plans,
                        "plans diverge: threads={} semi_naive={} join_reorder={}",
                        threads, semi_naive, join_reorder);
                }
            }
        }
    }
}

// ---------- Write plane: incremental publish == cold evaluation ---------

/// Canonical, interner-sensitive rendering of a model's true and
/// undefined facts (raw symbol ids, sorted) — comparable across mediators
/// driven through identical operation histories.
fn canonical_facts(m: &Model) -> (Vec<String>, Vec<String>) {
    let render = |fs: &FactStore| {
        let mut v: Vec<String> = fs.iter().map(|(p, t)| format!("{p:?}{t:?}")).collect();
        v.sort();
        v
    };
    (render(&m.facts), render(&m.undefined))
}

fn small_write_params(eval_threads: usize) -> ScenarioParams {
    ScenarioParams {
        senselab_rows: 6,
        ncmir_rows: 8,
        synapse_rows: 6,
        noise_sources: 1,
        noise_rows: 4,
        eval_threads,
        ..Default::default()
    }
}

/// Replays `ops` (mod 3: 0 = load a fresh NCMIR row, 1 = retract the most
/// recently loaded survivor, 2 = publish) into a freshly built faulted
/// scenario, publishing **eagerly** — the first publish is cold, every
/// later one is maintained incrementally on the warm model. Records the
/// canonical model and its eval stats at each publish point (plus a final
/// trailing publish, so every history ends observed).
/// Canonical model (true facts, undefined facts) plus the eval stats
/// recorded at one publish point.
type PublishObservation = ((Vec<String>, Vec<String>), EvalStats);

fn drive_incremental(
    params: &ScenarioParams,
    faults: Vec<Fault>,
    ops: &[u8],
) -> Vec<PublishObservation> {
    let (mut m, _inj) = build_scenario_with_faults(params, faults);
    m.materialize_all().unwrap();
    m.publish().unwrap();
    let pool = ncmir_update_rows(params.seed, 0, ops.len());
    let (mut next, mut live, mut out) = (0usize, Vec::new(), Vec::new());
    for &op in ops {
        match op % 3 {
            0 => {
                if next < pool.len() {
                    m.load_row("NCMIR", "protein_amount", &pool[next]).unwrap();
                    live.push(next);
                    next += 1;
                }
            }
            1 => {
                if let Some(i) = live.pop() {
                    m.retract_row("NCMIR", "protein_amount", &pool[i]).unwrap();
                }
            }
            _ => {
                let model = m.publish().unwrap();
                out.push((canonical_facts(model), model.stats));
            }
        }
    }
    let model = m.publish().unwrap();
    out.push((canonical_facts(model), model.stats));
    out
}

/// The cold reference for [`drive_incremental`]: for each publish point,
/// replays the prefix into a *fresh* mediator whose first and only
/// publish evaluates the accumulated engine state from scratch.
fn drive_cold(
    params: &ScenarioParams,
    faults: Vec<Fault>,
    ops: &[u8],
) -> Vec<(Vec<String>, Vec<String>)> {
    let mut ends: Vec<usize> = ops
        .iter()
        .enumerate()
        .filter(|&(_, &o)| o % 3 == 2)
        .map(|(i, _)| i)
        .collect();
    ends.push(ops.len());
    ends.into_iter()
        .map(|end| {
            let (mut m, _inj) = build_scenario_with_faults(params, faults.clone());
            m.materialize_all().unwrap();
            let pool = ncmir_update_rows(params.seed, 0, ops.len());
            let (mut next, mut live) = (0usize, Vec::new());
            for &op in &ops[..end] {
                match op % 3 {
                    0 if next < pool.len() => {
                        m.load_row("NCMIR", "protein_amount", &pool[next]).unwrap();
                        live.push(next);
                        next += 1;
                    }
                    1 => {
                        if let Some(i) = live.pop() {
                            m.retract_row("NCMIR", "protein_amount", &pool[i]).unwrap();
                        }
                    }
                    _ => {}
                }
            }
            canonical_facts(m.publish().unwrap())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// PR 8's tentpole invariant: under any interleaving of row loads,
    /// retractions, and publishes — on a scenario with a seeded fault
    /// schedule — every incremental publish yields a model
    /// **bit-identical** (canonical fact rendering, raw symbol ids) to a
    /// cold evaluation of the same operation prefix, and the publish
    /// stats are bit-identical across evaluate-plane thread budgets.
    #[test]
    fn incremental_publish_is_bit_identical_to_cold_rebuild(
        ops in prop::collection::vec(0u8..3, 1..10),
        fault_seed in 0u64..500,
        fail_per_mille in 0u16..300,
    ) {
        let faults = || vec![Fault::Flaky { seed: fault_seed, fail_per_mille }];
        let serial = drive_incremental(&small_write_params(1), faults(), &ops);
        let parallel = drive_incremental(&small_write_params(8), faults(), &ops);
        // Facts AND per-publish stats agree across thread budgets.
        prop_assert_eq!(&serial, &parallel);
        let cold = drive_cold(&small_write_params(1), faults(), &ops);
        prop_assert_eq!(serial.len(), cold.len());
        for (i, (got, want)) in serial.iter().zip(&cold).enumerate() {
            prop_assert_eq!(&got.0, want, "publish point {} diverges from cold", i);
        }
    }
}
