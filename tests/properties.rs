//! Property-based tests over the core data structures and invariants.

use kind::core::{run_section5, Fault, NeuroSchema, Section5Query};
use kind::datalog::{Engine, EvalOptions};
use kind::dm::{DomainMap, Resolved};
use kind::sources::{build_scenario_with_faults, ScenarioParams};
use kind::xml::{Element, Node};
use proptest::prelude::*;
use std::collections::HashSet;

// ---------- Datalog: transitive closure vs. reference BFS --------------

fn reference_tc(n: usize, edges: &[(usize, usize)]) -> HashSet<(usize, usize)> {
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
    }
    let mut out = HashSet::new();
    for s in 0..n {
        let mut seen = vec![false; n];
        let mut stack = vec![s];
        while let Some(x) = stack.pop() {
            for &y in &adj[x] {
                if !seen[y] {
                    seen[y] = true;
                    out.insert((s, y));
                    stack.push(y);
                }
            }
        }
    }
    out
}

fn tc_engine(edges: &[(usize, usize)], semi_naive: bool) -> HashSet<(usize, usize)> {
    let mut e = Engine::new();
    e.load(
        "tc(X,Y) :- edge(X,Y).
         tc(X,Y) :- tc(X,Z), edge(Z,Y).",
    )
    .unwrap();
    for &(a, b) in edges {
        let pa = e.constant(&format!("n{a}"));
        let pb = e.constant(&format!("n{b}"));
        let edge = e.sym("edge");
        e.add_fact(edge, vec![pa, pb]).unwrap();
    }
    let m = e
        .run(&EvalOptions {
            semi_naive,
            ..Default::default()
        })
        .unwrap();
    let mut e2 = e.clone();
    e2.query_model(&m, "tc(X, Y)")
        .unwrap()
        .into_iter()
        .map(|row| {
            let parse = |t: &kind::datalog::Term| -> usize { e.show(t)[1..].parse().unwrap() };
            (parse(&row[0]), parse(&row[1]))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn datalog_tc_matches_reference(
        edges in prop::collection::vec((0usize..12, 0usize..12), 0..40)
    ) {
        let expect = reference_tc(12, &edges);
        let got = tc_engine(&edges, true);
        prop_assert_eq!(&got, &expect);
    }

    #[test]
    fn seminaive_equals_naive(
        edges in prop::collection::vec((0usize..10, 0usize..10), 0..30)
    ) {
        prop_assert_eq!(tc_engine(&edges, true), tc_engine(&edges, false));
    }

    // ---------- Domain map: lub / closure invariants --------------------

    #[test]
    fn lub_is_common_ancestor_and_minimal(
        // A random forest: parent of node i+1 is drawn modulo i+1, which
        // keeps the hierarchy acyclic.
        parents in prop::collection::vec(0usize..20, 19)
    ) {
        let mut dm = DomainMap::new();
        for i in 0..20usize {
            dm.concept(&format!("c{i}"));
        }
        for (i, &p) in parents.iter().enumerate() {
            let child = i + 1; // node 0 is the root-ish node
            let parent = p % child; // strictly smaller: acyclic
            dm.isa(&format!("c{child}"), &format!("c{parent}"));
        }
        let r = Resolved::new(&dm);
        let a = dm.lookup("c7").unwrap();
        let b = dm.lookup("c13").unwrap();
        if let Some(l) = r.lub(&[a, b]) {
            prop_assert!(r.ancestors(a).contains(&l));
            prop_assert!(r.ancestors(b).contains(&l));
            // Minimality: no common ancestor strictly below l.
            let common: Vec<_> = r
                .ancestors(a)
                .intersection(&r.ancestors(b))
                .copied()
                .collect();
            for o in common {
                if o != l && r.is_subconcept(o, l) {
                    prop_assert!(r.is_subconcept(l, o), "found strictly-lower common ancestor");
                }
            }
        }
    }

    #[test]
    fn dc_contains_base_and_tc_contains_dc(
        isa in prop::collection::vec((0usize..10, 0usize..10), 0..15),
        roles in prop::collection::vec((0usize..10, 0usize..10), 0..15)
    ) {
        let mut dm = DomainMap::new();
        for i in 0..10usize {
            dm.concept(&format!("c{i}"));
        }
        // Only downward-pointing isa edges (child id > parent id) keep
        // the hierarchy acyclic, matching real domain maps.
        for &(a, b) in &isa {
            if a > b {
                dm.isa(&format!("c{a}"), &format!("c{b}"));
            }
        }
        for &(a, b) in &roles {
            dm.ex(&format!("c{a}"), "has_a", &format!("c{b}"));
        }
        let r = Resolved::new(&dm);
        let base: HashSet<_> = r.role_pairs("has_a").iter().copied().collect();
        let dc: HashSet<_> = r.dc_pairs("has_a").into_iter().collect();
        let tc: HashSet<_> = r.tc_of_dc("has_a").into_iter().collect();
        prop_assert!(base.is_subset(&dc), "dc must contain the base role");
        prop_assert!(dc.is_subset(&tc), "tc(dc) must contain dc");
    }

    #[test]
    fn downward_closure_is_reflexive_and_within_map(
        roles in prop::collection::vec((0usize..8, 0usize..8), 0..12)
    ) {
        let mut dm = DomainMap::new();
        for i in 0..8usize {
            dm.concept(&format!("c{i}"));
        }
        for &(a, b) in &roles {
            dm.ex(&format!("c{a}"), "has_a", &format!("c{b}"));
        }
        let r = Resolved::new(&dm);
        let root = dm.lookup("c0").unwrap();
        let region = r.downward_closure("has_a", root);
        prop_assert!(region.contains(&root));
        let set: HashSet<_> = region.iter().collect();
        prop_assert_eq!(set.len(), region.len(), "no duplicates");
    }

    // ---------- Faults: seeded schedules are deterministic ---------------

    #[test]
    fn fault_schedules_replay_byte_identically(
        seed in 0u64..u64::MAX,
        fail_per_mille in 0u16..600,
        corrupt_per_mille in 0u16..400,
    ) {
        // Two mediators built from the same params and the same seeded
        // fault schedule must produce *equal* answers AND equal reports —
        // retries, quarantines, breaker skips, everything.
        let faults = || vec![
            Fault::Flaky { seed, fail_per_mille },
            Fault::CorruptRows { seed: seed.rotate_left(17), corrupt_per_mille },
        ];
        let params = ScenarioParams { noise_sources: 1, ..Default::default() };
        let run = || {
            let (mut m, _inj) = build_scenario_with_faults(&params, faults());
            let schema = NeuroSchema::default();
            let q = Section5Query {
                organism: "rat".into(),
                transmitting_compartment: "Parallel_Fiber".into(),
                ion: "calcium".into(),
            };
            run_section5(&mut m, &schema, &q, true).unwrap()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(&a.report, &b.report);
        prop_assert_eq!(a, b);
    }

    // ---------- XML: serialize/parse roundtrip --------------------------

    #[test]
    fn xml_roundtrip(tree in xml_tree(3)) {
        let text = kind::xml::to_string(&tree);
        let doc = kind::xml::parse(&text).unwrap();
        prop_assert_eq!(doc.root, tree);
    }
}

/// Strategy for random XML elements (names from a safe alphabet, text
/// avoiding pure whitespace which the parser deliberately drops).
fn xml_tree(depth: u32) -> impl Strategy<Value = Element> {
    let name = "[a-z][a-z0-9]{0,6}";
    let attr_val = "[ -~&&[^<>&\"]]{0,12}";
    let leaf = (name, prop::collection::vec((name, attr_val), 0..3)).prop_map(|(n, attrs)| {
        let mut e = Element::new(n);
        for (k, v) in attrs {
            // Attribute keys must be unique for a stable roundtrip.
            if e.attr(&k).is_none() {
                e.attrs.push((k, v));
            }
        }
        e
    });
    leaf.prop_recursive(depth, 24, 4, move |inner| {
        (
            "[a-z][a-z0-9]{0,6}",
            prop::collection::vec(
                prop_oneof![
                    inner.prop_map(Node::Element),
                    "[a-zA-Z<>&\"']{1,12}".prop_map(Node::Text),
                ],
                0..4,
            ),
        )
            .prop_map(|(n, children)| {
                let mut e = Element::new(n);
                // Adjacent text nodes merge on parse; pre-merge here.
                for c in children {
                    match (e.children.last_mut(), c) {
                        (Some(Node::Text(prev)), Node::Text(t)) => prev.push_str(&t),
                        (_, c) => e.children.push(c),
                    }
                }
                e
            })
    })
}
