//! Seeded chaos soak: random fault schedules × deadlines × hedging ×
//! thread counts, end to end through the §5 plan.
//!
//! For every seed we derive a deterministic configuration — which faults
//! hit SENSELAB, whether a query budget is armed, whether hedging is on —
//! and run the full plan at every `{fetch,eval}_threads` combination in
//! `{1, N}²` (N from `KIND_EVAL_THREADS`, default 8), crossed with both
//! fetch transports (scoped threads and the overlapped executor). The
//! invariants:
//!
//! * nothing panics — every configuration degrades, it never aborts;
//! * the [`kind::core::AnswerReport`] (outcomes, attempts, hedges,
//!   cancellations, elapsed time) is **bit-identical** across all thread
//!   combinations and across repeat runs of the same configuration;
//! * whenever the report says `is_complete()`, the answer itself is
//!   bit-identical to the fault-free baseline.
//!
//! Faults are injected into SENSELAB only: the determinism guarantee
//! rests on per-source fault schedules being consumed serially inside
//! that source's fetch job, which a single faulty source exercises
//! without letting concurrent injectors race each other on the shared
//! virtual clock.
//!
//! CI runs this as the `chaos-smoke` job at fixed seeds; locally, widen
//! the sweep with e.g. `KIND_CHAOS_SEEDS="1,2,3,4,5" cargo test --test
//! chaos_soak`.

use kind::core::{run_section5, Fault, FetchMode, NeuroSchema, PlanTrace, Section5Query};
use kind::sources::{build_scenario, build_scenario_with_faults, ScenarioParams};

/// splitmix64 — the same deterministic scrambler the fault injector uses
/// for its seeded schedules.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn seeds_from_env() -> Vec<u64> {
    std::env::var("KIND_CHAOS_SEEDS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<u64>| !v.is_empty())
        .unwrap_or_else(|| vec![2001, 7, 42])
}

fn high_threads_from_env() -> usize {
    std::env::var("KIND_EVAL_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 1)
        .unwrap_or(8)
}

/// One derived chaos configuration: everything is a pure function of the
/// seed, so equal seeds mean equal runs — on any machine, at any thread
/// count.
#[derive(Debug)]
struct ChaosConfig {
    faults: Vec<Fault>,
    query_budget_ms: u64,
    hedge_after_ms: u64,
}

fn derive_config(seed: u64) -> ChaosConfig {
    let mut faults = Vec::new();
    // Between one and three fault layers, drawn from the full taxonomy.
    let n_faults = 1 + (mix(seed ^ 0xFA) % 3) as usize;
    for i in 0..n_faults {
        let d = mix(seed ^ 0xF0 ^ (i as u64).wrapping_mul(0x1234567));
        faults.push(match d % 6 {
            0 => Fault::FailFirst((d >> 8) as u32 % 3),
            1 => Fault::Flaky {
                seed: d,
                fail_per_mille: ((d >> 16) % 400) as u16,
            },
            2 => Fault::Slow {
                delay_ms: 20 + (d >> 8) % 200,
            },
            3 => Fault::SlowTail {
                seed: d,
                delay_ms: 100 + (d >> 8) % 400,
                slow_per_mille: ((d >> 24) % 600) as u16,
            },
            4 => Fault::CorruptRows {
                seed: d,
                corrupt_per_mille: ((d >> 16) % 300) as u16,
            },
            _ => Fault::TruncateAfter(5 + (d >> 8) as usize % 50),
        });
    }
    let query_budget_ms = match mix(seed ^ 0xB0D9E7) % 3 {
        0 => 0,                                // no deadline
        1 => 50 + mix(seed ^ 0xB1) % 200,      // tight: expect cutoffs
        _ => 5_000 + mix(seed ^ 0xB2) % 5_000, // loose: rarely binds
    };
    let hedge_after_ms = if mix(seed ^ 0x4ED6E).is_multiple_of(2) {
        0
    } else {
        50
    };
    ChaosConfig {
        faults,
        query_budget_ms,
        hedge_after_ms,
    }
}

fn s5_query() -> Section5Query {
    Section5Query {
        organism: "rat".into(),
        transmitting_compartment: "Parallel_Fiber".into(),
        ion: "calcium".into(),
    }
}

/// Everything a run must reproduce exactly: the degradation report and
/// the answer payload, canonicalized to comparable strings.
fn fingerprint(trace: &PlanTrace) -> (String, String) {
    let report = format!("{:?}", trace.report);
    let answer = format!(
        "{:?}|{:?}|{:?}|{:?}",
        trace.step1_pairs, trace.selected_sources, trace.proteins, trace.distribution
    );
    (report, answer)
}

fn run_once(
    cfg: &ChaosConfig,
    fetch_threads: usize,
    eval_threads: usize,
    fetch_mode: FetchMode,
) -> (String, String) {
    let params = ScenarioParams {
        fetch_threads,
        eval_threads,
        fetch_mode,
        query_budget_ms: cfg.query_budget_ms,
        hedge_after_ms: cfg.hedge_after_ms,
        ..ScenarioParams::default()
    };
    let (mut m, _injector) = build_scenario_with_faults(&params, cfg.faults.clone());
    let trace = run_section5(&mut m, &NeuroSchema::default(), &s5_query(), true)
        .expect("chaos degrades the answer, it never aborts the plan");
    fingerprint(&trace)
}

#[test]
fn chaos_soak_is_deterministic_and_degrades_gracefully() {
    let hi = high_threads_from_env();
    // The fault-free baseline answer, for the completeness check.
    let (_, baseline_answer) = {
        let mut m = build_scenario(&ScenarioParams::default());
        let trace = run_section5(&mut m, &NeuroSchema::default(), &s5_query(), true)
            .expect("fault-free baseline runs");
        fingerprint(&trace)
    };
    for seed in seeds_from_env() {
        let cfg = derive_config(seed);
        // Thread combinations crossed with both fetch transports: the
        // overlapped executor must reproduce the scoped plane's reports
        // and answers bit for bit under every chaos schedule.
        let mut combos = Vec::new();
        for mode in [FetchMode::ScopedThreads, FetchMode::Overlapped] {
            for (f, e) in [(1, 1), (1, hi), (hi, 1), (hi, hi)] {
                combos.push((f, e, mode));
            }
        }
        let runs: Vec<(String, String)> = combos
            .iter()
            .map(|&(f, e, mode)| run_once(&cfg, f, e, mode))
            .collect();
        // Bit-identical reports and answers at every combination.
        for (combo, run) in combos.iter().zip(&runs).skip(1) {
            assert_eq!(
                run, &runs[0],
                "seed {seed}: {combo:?} diverged from (1,1,scoped) under {cfg:?}"
            );
        }
        // Repeat-run determinism at the high-thread setting, both modes.
        for mode in [FetchMode::ScopedThreads, FetchMode::Overlapped] {
            let again = run_once(&cfg, hi, hi, mode);
            assert_eq!(
                again, runs[0],
                "seed {seed}: repeat {mode:?} run diverged under {cfg:?}"
            );
        }
        // A report that claims completeness must back it up: the answer
        // equals the fault-free baseline bit for bit.
        let (_report, answer) = &runs[0];
        let params = ScenarioParams {
            query_budget_ms: cfg.query_budget_ms,
            hedge_after_ms: cfg.hedge_after_ms,
            ..ScenarioParams::default()
        };
        let (mut m, _inj) = build_scenario_with_faults(&params, cfg.faults.clone());
        let trace =
            run_section5(&mut m, &NeuroSchema::default(), &s5_query(), true).expect("plan runs");
        if trace.report.is_complete() {
            assert_eq!(
                answer, &baseline_answer,
                "seed {seed}: report claims complete but the answer differs from the \
                 fault-free baseline under {cfg:?}"
            );
        }
    }
}

/// The ISSUE's acceptance scenario, pinned as a regression: an 8-source
/// scenario with one injected 10×-slow tail either completes via a hedge
/// or reports `DeadlineExceeded` — and does so bit-identically at every
/// thread count.
#[test]
fn slow_tail_with_deadline_and_hedge_is_reproducible() {
    let hi = high_threads_from_env();
    let cfg = ChaosConfig {
        faults: vec![Fault::SlowTail {
            seed: 2001,
            delay_ms: 500, // 10× the 50ms hedge threshold
            slow_per_mille: 500,
        }],
        query_budget_ms: 2_000,
        hedge_after_ms: 50,
    };
    let baseline = run_once(&cfg, 1, 1, FetchMode::ScopedThreads);
    for mode in [FetchMode::ScopedThreads, FetchMode::Overlapped] {
        for &(f, e) in &[(1, hi), (hi, 1), (hi, hi)] {
            assert_eq!(
                run_once(&cfg, f, e, mode),
                baseline,
                "threads ({f},{e}) mode {mode:?}"
            );
        }
    }
    // The report must show the deadline plane actually engaged: either a
    // hedge rescued the tail (answer complete) or the deadline cut it off.
    let params = ScenarioParams {
        query_budget_ms: cfg.query_budget_ms,
        hedge_after_ms: cfg.hedge_after_ms,
        ..ScenarioParams::default()
    };
    let (mut m, _inj) = build_scenario_with_faults(&params, cfg.faults.clone());
    let trace =
        run_section5(&mut m, &NeuroSchema::default(), &s5_query(), true).expect("plan runs");
    let senselab = trace.report.source("SENSELAB").expect("contacted");
    assert!(
        trace.report.is_complete() && senselab.hedged > 0 || trace.report.deadline_exceeded(),
        "expected hedged-complete or deadline-exceeded, got: {}",
        trace.report.summary_line()
    );
    assert!(trace.report.elapsed_ms <= trace.report.budget_ms || trace.report.deadline_exceeded());
}
