//! Direct checks of the paper's concrete claims, figure by figure.

use kind::dm::{figures, parse_axioms, subsume::Subsumption, ConceptExpr, Resolved};
use kind::flogic::FLogic;
use kind::gcm::{xml_codec, ConceptualModel, GcmBase, GcmDecl, GcmValue};

// ---------- Table 1: GCM ↔ FL correspondence ---------------------------

/// Every GCM core expression rendered as FL syntax (Table 1 middle
/// column) parses back and produces the same facts as applying the typed
/// declaration directly.
#[test]
fn table1_fl_rendering_roundtrips_through_the_parser() {
    let decls = vec![
        GcmDecl::Instance {
            obj: "x1".into(),
            class: "neuron".into(),
        },
        GcmDecl::Subclass {
            sub: "axon".into(),
            sup: "compartment".into(),
        },
        GcmDecl::Method {
            class: "neuron".into(),
            method: "has".into(),
            result: "compartment".into(),
        },
        GcmDecl::MethodInst {
            obj: "x1".into(),
            method: "size".into(),
            value: GcmValue::Int(9),
        },
    ];
    // Path A: apply typed declarations.
    let mut base_a = GcmBase::new();
    let mut cm = ConceptualModel::new("T");
    for d in &decls {
        cm.push(d.clone());
    }
    base_a.apply(&cm).unwrap();
    let model_a = base_a.run().unwrap();
    // Path B: render each as FL text and load through the FL parser.
    let mut fl = FLogic::new();
    for d in &decls {
        fl.load(&d.to_fl()).unwrap();
    }
    let model_b = fl.run().unwrap();
    // Same conceptual content.
    for (obj, class) in [("x1", "neuron"), ("x1", "neuron")] {
        assert_eq!(
            base_a.flogic().is_instance(&model_a, obj, class),
            fl.is_instance(&model_b, obj, class)
        );
    }
    assert!(fl.is_subclass(&model_b, "axon", "compartment"));
    assert!(base_a.flogic().is_subclass(&model_a, "axon", "compartment"));
    assert_eq!(
        fl.method_values(&model_b, "x1"),
        base_a.flogic().method_values(&model_a, "x1")
    );
}

/// Table 1's FL axioms: `::` reflexive & transitive, `:` propagates
/// upward — checked on a deep chain.
#[test]
fn table1_axioms_on_deep_chain() {
    let mut fl = FLogic::new();
    let mut text = String::new();
    for i in 0..50 {
        text.push_str(&format!("c{} :: c{}.\n", i, i + 1));
    }
    text.push_str("obj : c0.\n");
    fl.load(&text).unwrap();
    let m = fl.run().unwrap();
    assert!(fl.is_subclass(&m, "c0", "c50"));
    assert!(fl.is_subclass(&m, "c25", "c25")); // reflexivity
    assert!(fl.is_instance(&m, "obj", "c50")); // upward propagation
    assert!(!fl.is_subclass(&m, "c50", "c0"));
}

// ---------- Figure 1 ----------------------------------------------------

/// §1: "a researcher who wanted to model the effects of neurotransmission
/// in hippocampal spines would get structural information … from SYNAPSE
/// and information about the types of calcium binding proteins found in
/// spines from NCMIR" — the knowledge chain connecting the worlds exists
/// in the Figure 1 map.
#[test]
fn figure1_connects_neurotransmission_to_proteins() {
    let dm = figures::figure1();
    let r = Resolved::new(&dm);
    // Dendritic spines are ion regulating components…
    let spine = dm.lookup("Spine").unwrap();
    let irc = dm.lookup("Ion_Regulating_Component").unwrap();
    assert!(r.is_subconcept(spine, irc));
    // …spines have (contain) ion binding proteins…
    let ibp = dm.lookup("Ion_Binding_Protein").unwrap();
    assert!(r.role_pairs("contains").contains(&(spine, ibp)));
    // …ion binding proteins control ion activity…
    let ia = dm.lookup("Ion_Activity").unwrap();
    assert!(r.role_pairs("controls").contains(&(ibp, ia)));
    // …which is a subprocess of neurotransmission.
    let nt = dm.lookup("Neurotransmission").unwrap();
    assert!(r.role_pairs("subprocess_of").contains(&(ia, nt)));
}

/// Both labs' cells are spiny neurons, hence neurons with spines — even
/// though neither source says so.
#[test]
fn figure1_both_cell_types_inherit_spines() {
    let dm = figures::figure1();
    let r = Resolved::new(&dm);
    let spine = dm.lookup("Spine").unwrap();
    for cell in ["Purkinje_Cell", "Pyramidal_Cell"] {
        let c = dm.lookup(cell).unwrap();
        assert!(
            r.dc_pairs("has").contains(&(c, spine)),
            "{cell} should inherit has.Spine"
        );
    }
}

// ---------- Figure 3 ----------------------------------------------------

/// §4: after registration, "it follows that MyNeuron definitely projects
/// to Globus Pallidus External"; with nonmonotonic inheritance one can
/// specify it *only* projects there.
#[test]
fn figure3_registration_inferences() {
    let dm = figures::figure3();
    let r = Resolved::new(&dm);
    let mn = dm.lookup("MyNeuron").unwrap();
    // Definite projection (its own axiom).
    let gpe = dm.lookup("Globus_Pallidus_External").unwrap();
    assert!(r.dc_pairs("proj").contains(&(mn, gpe)));
    // Inherited knowledge: like any medium spiny neuron it *may* project
    // to the OR'd targets — but no *definite* link to, say, the internal
    // pallidus exists.
    let gpi = dm.lookup("Globus_Pallidus_Internal").unwrap();
    assert!(!r.dc_pairs("proj").contains(&(mn, gpi)));
}

/// The nonmonotonic-override story of §4, at the instance level: by
/// default an MSN projects "somewhere in the OR set" (here modeled as a
/// default), but MyNeuron's explicit projection overrides it.
#[test]
fn figure3_nonmonotonic_projection_override() {
    let mut fl = FLogic::with_inheritance();
    fl.load(
        "my_neuron_class :: medium_spiny_neuron.
         m1 : my_neuron_class.
         m2 : medium_spiny_neuron.
         m1[proj -> globus_pallidus_external].",
    )
    .unwrap();
    fl.load_datalog("default(medium_spiny_neuron, proj, some_pallidal_target).")
        .unwrap();
    let m = fl.run().unwrap();
    let mut e = fl.engine().clone();
    // m2 inherits the default; m1's explicit value overrides it.
    let v2 = e.query_model(&m, "val(m2, proj, V)").unwrap();
    assert_eq!(v2.len(), 1);
    assert_eq!(e.show(&v2[0][2]), "some_pallidal_target");
    let v1 = e.query_model(&m, "val(m1, proj, V)").unwrap();
    assert_eq!(v1.len(), 1);
    assert_eq!(e.show(&v1[0][2]), "globus_pallidus_external");
}

// ---------- Proposition 1 / the decidable fragment ----------------------

/// Subsumption on the restricted fragment agrees with graph reachability
/// for told hierarchies (soundness sanity) and handles the paper's
/// definitions.
#[test]
fn decidable_fragment_agrees_with_graph_on_figure1() {
    let axioms = parse_axioms(figures::FIGURE1_AXIOMS).unwrap();
    let reasoner = Subsumption::new(&axioms);
    let dm = figures::figure1();
    let r = Resolved::new(&dm);
    let names: Vec<&str> = dm.concepts().map(|(_, n)| n).collect();
    for &a in &names {
        for &b in &names {
            let graph_says = r.is_subconcept(dm.lookup(a).unwrap(), dm.lookup(b).unwrap());
            let logic_says = reasoner.subsumes(
                &ConceptExpr::Atomic(b.to_string()),
                &ConceptExpr::Atomic(a.to_string()),
            );
            // The graph view is the paper's executable approximation; the
            // structural reasoner must derive at least everything the
            // graph derives (it may know more, e.g. via definitions).
            if graph_says {
                assert!(logic_says, "graph says {a} ⊑ {b} but reasoner disagrees");
            }
        }
    }
}

// ---------- The GCM wire format -----------------------------------------

/// §2: "syntactically all information goes over the wire in XML syntax" —
/// a full conceptual model survives the wire.
#[test]
fn conceptual_models_survive_the_wire() {
    let cm = ConceptualModel::new("SYNAPSE")
        .subclass("spine", "compartment")
        .method("spine", "length", "float")
        .instance("s1", "spine")
        .method_inst("s1", "length", GcmValue::Int(12))
        .relation("has", &[("whole", "dendrite"), ("part", "spine")])
        .relation_inst(
            "has",
            &[
                ("whole", GcmValue::Id("d1".into())),
                ("part", GcmValue::Id("s1".into())),
            ],
        )
        .rule("X : measured :- X : spine, X[length -> _].");
    let wire = kind::xml::to_pretty_string(&xml_codec::encode(&cm));
    let decoded = xml_codec::decode(&kind::xml::parse(&wire).unwrap().root).unwrap();
    assert_eq!(cm, decoded);
    // And the decoded model actually evaluates.
    let mut base = GcmBase::new();
    base.apply(&decoded).unwrap();
    let m = base.run().unwrap();
    assert!(base.flogic().is_instance(&m, "s1", "measured"));
}
